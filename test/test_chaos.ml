(* Deterministic fault injection (sss_chaos): the four systems must survive
   message drops/duplicates, a partition-and-heal cycle, and a node
   crash-and-restart — producing checker-accepted histories with zero SSS
   read-only aborts — and the whole trajectory must replay byte-identically
   from the same seeds. *)

open Sss_sim
open Sss_consistency
module Chaos = Sss_chaos.Chaos
module Driver = Sss_workload.Driver

let any = { Chaos.src = None; dst = None; kinds = [] }

let rule ?(target = any) ?(drop = 0.0) ?(dup = 0.0) ?(delay = 0.0) ?(from_ = 0.0)
    ?(until = Float.infinity) () =
  { Chaos.target; drop; dup; delay; from_; until }

(* Drops + duplicates throughout, one partition/heal cycle, one node
   crash/restart — all inside the measured window. *)
let base_plan ~seed =
  {
    Chaos.seed;
    rules = [ rule ~drop:0.03 (); rule ~dup:0.02 () ];
    events =
      [
        Chaos.Partition { at = 0.010; heal_at = 0.013; groups = [ [ 0; 1 ]; [ 2; 3 ] ] };
        Chaos.Crash { at = 0.018; restart_at = Some 0.021; node = 2 };
      ];
  }

let chaos_config ~degree ~seed =
  {
    Sss_kv.Config.default with
    nodes = 4;
    replication_degree = degree;
    total_keys = 24;
    seed;
    fault_tolerance = true;
  }

let chaos_load ~seed =
  {
    Driver.default_load with
    clients_per_node = 2;
    warmup = 0.005;
    duration = 0.03;
    seed;
  }

let drive sim ~seed ~ops =
  Driver.run sim ~nodes:4 ~total_keys:24
    ~local_keys:(fun _ -> [||])
    ~profile:(Driver.paper_profile ~read_only_ratio:0.5)
    ~load:(chaos_load ~seed) ~ops

type outcome = {
  committed : int;
  checks : (string * (unit, string) result) list;
  history : History.t;
  events_processed : int;
  net_stats : Sss_net.Network.stats;
  chaos_stats : Chaos.stats;
}

let run_sss ~plan ~seed =
  let sim = Sim.create () in
  let cl = Sss_kv.Kv.create sim (chaos_config ~degree:2 ~seed) in
  let h = Chaos.install sim (Sss_kv.Kv.network cl) ~kind_of:Sss_kv.Message.kind_name plan in
  let result =
    drive sim ~seed
      ~ops:
        {
          Driver.begin_txn = (fun ~node ~read_only -> Sss_kv.Kv.begin_txn cl ~node ~read_only);
          read = Sss_kv.Kv.read;
          write = Sss_kv.Kv.write;
          commit = Sss_kv.Kv.commit;
        }
  in
  let history = Sss_kv.Kv.history cl in
  {
    committed = result.Driver.committed;
    checks =
      [
        ("sss external-consistency", Checker.external_consistency history);
        ("sss serializability", Checker.serializability history);
        ("sss no-lost-updates", Checker.no_lost_updates history);
        ("sss ro-abort-free", Checker.read_only_abort_free history);
        ("sss quiescent", Sss_kv.Kv.quiescent cl);
      ];
    history;
    events_processed = Sim.events_processed sim;
    net_stats = Sss_kv.Kv.network_stats cl;
    chaos_stats = Chaos.stats h;
  }

let run_twopc ~plan ~seed =
  let sim = Sim.create () in
  let cl = Twopc_kv.Twopc.create sim (chaos_config ~degree:2 ~seed) in
  let h =
    Chaos.install sim (Twopc_kv.Twopc.network cl) ~kind_of:Twopc_kv.Twopc.message_kind plan
  in
  let result =
    drive sim ~seed
      ~ops:
        {
          Driver.begin_txn =
            (fun ~node ~read_only -> Twopc_kv.Twopc.begin_txn cl ~node ~read_only);
          read = Twopc_kv.Twopc.read;
          write = Twopc_kv.Twopc.write;
          commit = Twopc_kv.Twopc.commit;
        }
  in
  let history = Twopc_kv.Twopc.history cl in
  {
    committed = result.Driver.committed;
    checks =
      [
        ("2pc external-consistency", Checker.external_consistency history);
        ("2pc no-lost-updates", Checker.no_lost_updates history);
        ("2pc quiescent", Twopc_kv.Twopc.quiescent cl);
      ];
    history;
    events_processed = Sim.events_processed sim;
    net_stats = Sss_net.Network.stats (Twopc_kv.Twopc.network cl);
    chaos_stats = Chaos.stats h;
  }

let run_walter ~plan ~seed =
  let sim = Sim.create () in
  let cl = Walter_kv.Walter.create sim (chaos_config ~degree:2 ~seed) in
  let h =
    Chaos.install sim (Walter_kv.Walter.network cl) ~kind_of:Walter_kv.Walter.message_kind plan
  in
  let result =
    drive sim ~seed
      ~ops:
        {
          Driver.begin_txn =
            (fun ~node ~read_only -> Walter_kv.Walter.begin_txn cl ~node ~read_only);
          read = Walter_kv.Walter.read;
          write = Walter_kv.Walter.write;
          commit = Walter_kv.Walter.commit;
        }
  in
  let history = Walter_kv.Walter.history cl in
  {
    committed = result.Driver.committed;
    checks =
      [
        ("walter no-lost-updates", Checker.no_lost_updates history);
        ("walter ro-abort-free", Checker.read_only_abort_free history);
        ("walter quiescent", Walter_kv.Walter.quiescent cl);
      ];
    history;
    events_processed = Sim.events_processed sim;
    net_stats = Sss_net.Network.stats (Walter_kv.Walter.network cl);
    chaos_stats = Chaos.stats h;
  }

let run_rococo ~plan ~seed =
  let sim = Sim.create () in
  let cl = Rococo_kv.Rococo.create sim (chaos_config ~degree:1 ~seed) in
  let h =
    Chaos.install sim (Rococo_kv.Rococo.network cl) ~kind_of:Rococo_kv.Rococo.message_kind plan
  in
  let result =
    drive sim ~seed
      ~ops:
        {
          Driver.begin_txn =
            (fun ~node ~read_only -> Rococo_kv.Rococo.begin_txn cl ~node ~read_only);
          read = Rococo_kv.Rococo.read;
          write = Rococo_kv.Rococo.write;
          commit = Rococo_kv.Rococo.commit;
        }
  in
  let history = Rococo_kv.Rococo.history cl in
  {
    committed = result.Driver.committed;
    checks =
      [
        ("rococo serializability", Checker.serializability history);
        ("rococo no-lost-updates", Checker.no_lost_updates history);
        ("rococo quiescent", Rococo_kv.Rococo.quiescent cl);
      ];
    history;
    events_processed = Sim.events_processed sim;
    net_stats = Sss_net.Network.stats (Rococo_kv.Rococo.network cl);
    chaos_stats = Chaos.stats h;
  }

let systems = [ ("sss", run_sss); ("2pc", run_twopc); ("walter", run_walter); ("rococo", run_rococo) ]

(* ---------- the seed sweep: every system, checker-accepted, under the
   full plan ---------- *)

let test_sweep () =
  let total_committed = ref 0 in
  for seed = 1 to 20 do
    let plan = base_plan ~seed in
    List.iter
      (fun (name, run) ->
        let o = run ~plan ~seed in
        total_committed := !total_committed + o.committed;
        (* the plan must actually bite, or the test proves nothing *)
        if o.chaos_stats.Chaos.injected_drops = 0 then
          Alcotest.failf "%s seed=%d: plan injected no drops" name seed;
        if o.chaos_stats.Chaos.partitions <> 1 || o.chaos_stats.Chaos.heals <> 1 then
          Alcotest.failf "%s seed=%d: partition/heal did not fire" name seed;
        if o.chaos_stats.Chaos.crashes <> 1 || o.chaos_stats.Chaos.restarts <> 1 then
          Alcotest.failf "%s seed=%d: crash/restart did not fire" name seed;
        List.iter
          (fun (check, res) ->
            match res with
            | Ok () -> ()
            | Error msg -> Alcotest.failf "%s seed=%d %s: %s" name seed check msg)
          o.checks)
      systems
  done;
  if !total_committed = 0 then Alcotest.fail "chaos sweep committed nothing"

(* SSS read-only transactions must abort zero times even mid-partition: not
   just "no RO abort events" (the checker's view) but also committed RO work
   actually happened. *)

let test_sss_ro_abort_zero () =
  for seed = 1 to 20 do
    let o = run_sss ~plan:(base_plan ~seed) ~seed in
    let ro_txns = Hashtbl.create 64 in
    let ro_aborts = ref 0 and ro_commits = ref 0 in
    List.iter
      (fun (s : History.stamped) ->
        match s.History.event with
        | History.Begin { txn; ro = true; _ } -> Hashtbl.replace ro_txns txn ()
        | History.Abort { txn } -> if Hashtbl.mem ro_txns txn then incr ro_aborts
        | History.Commit { txn; _ } -> if Hashtbl.mem ro_txns txn then incr ro_commits
        | _ -> ())
      (History.events o.history);
    Alcotest.(check int) (Printf.sprintf "seed %d: RO aborts" seed) 0 !ro_aborts;
    if !ro_commits = 0 then Alcotest.failf "seed %d: no RO transaction committed" seed
  done

(* ---------- determinism: same plan + same seed => byte-identical
   trajectory ---------- *)

let test_deterministic_replay () =
  List.iter
    (fun (name, run) ->
      let seed = 5 in
      let a = run ~plan:(base_plan ~seed) ~seed in
      let b = run ~plan:(base_plan ~seed) ~seed in
      Alcotest.(check int)
        (name ^ ": events processed") a.events_processed b.events_processed;
      Alcotest.(check bool)
        (name ^ ": network stats") true (a.net_stats = b.net_stats);
      Alcotest.(check bool)
        (name ^ ": chaos stats") true (a.chaos_stats = b.chaos_stats);
      Alcotest.(check int)
        (name ^ ": history length")
        (History.length a.history) (History.length b.history);
      if History.events a.history <> History.events b.history then
        Alcotest.failf "%s: histories diverge between identical runs" name)
    systems

(* ---------- liveness: after the partition heals, every node's clients
   commit again ---------- *)

let test_partition_heal_liveness () =
  let heal_at = 0.015 in
  let plan =
    {
      Chaos.seed = 3;
      rules = [];
      events = [ Chaos.Partition { at = 0.008; heal_at; groups = [ [ 0; 1 ]; [ 2; 3 ] ] } ];
    }
  in
  let o = run_sss ~plan ~seed:3 in
  List.iter
    (fun (check, res) ->
      match res with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "liveness %s: %s" check msg)
    o.checks;
  (* every node commits something strictly after the heal *)
  let nodes_committing = Hashtbl.create 4 in
  List.iter
    (fun (s : History.stamped) ->
      match s.History.event with
      | History.Commit { txn; _ } when s.History.at > heal_at ->
          Hashtbl.replace nodes_committing txn.Sss_data.Ids.node ()
      | _ -> ())
    (History.events o.history);
  for node = 0 to 3 do
    if not (Hashtbl.mem nodes_committing node) then
      Alcotest.failf "node %d committed nothing after the heal" node
  done

(* ---------- DSL ---------- *)

let test_dsl_parse () =
  match
    Chaos.parse
      "seed=7; drop(p=0.05,kind=prepare+vote,src=1,dst=2,from=0.01,until=0.02); \
       dup(p=0.02); delay(mean=0.0005); \
       partition(at=0.010,heal=0.013,groups=0.1|2.3); crash(at=0.018,restart=0.021,node=2)"
  with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok plan ->
      Alcotest.(check int) "seed" 7 plan.Chaos.seed;
      Alcotest.(check int) "rules" 3 (List.length plan.Chaos.rules);
      (match plan.Chaos.rules with
      | [ d; u; l ] ->
          Alcotest.(check (float 0.0)) "drop p" 0.05 d.Chaos.drop;
          Alcotest.(check (list string))
            "drop kinds" [ "prepare"; "vote" ] d.Chaos.target.Chaos.kinds;
          Alcotest.(check (option int)) "drop src" (Some 1) d.Chaos.target.Chaos.src;
          Alcotest.(check (float 0.0)) "drop until" 0.02 d.Chaos.until;
          Alcotest.(check (float 0.0)) "dup p" 0.02 u.Chaos.dup;
          Alcotest.(check (float 0.0)) "delay mean" 0.0005 l.Chaos.delay
      | _ -> Alcotest.fail "rule shapes");
      (match plan.Chaos.events with
      | [ Chaos.Partition { at; heal_at; groups }; Chaos.Crash { at = cat; restart_at; node } ]
        ->
          Alcotest.(check (float 0.0)) "partition at" 0.010 at;
          Alcotest.(check (float 0.0)) "heal at" 0.013 heal_at;
          Alcotest.(check (list (list int))) "groups" [ [ 0; 1 ]; [ 2; 3 ] ] groups;
          Alcotest.(check (float 0.0)) "crash at" 0.018 cat;
          Alcotest.(check (option (float 0.0))) "restart" (Some 0.021) restart_at;
          Alcotest.(check int) "crash node" 2 node
      | _ -> Alcotest.fail "event shapes");
      Alcotest.(check (result unit string)) "valid" (Ok ()) (Chaos.validate ~nodes:4 plan)

let test_dsl_roundtrip () =
  let plans =
    [
      Chaos.empty;
      base_plan ~seed:42;
      {
        Chaos.seed = 9;
        rules =
          [
            rule
              ~target:{ Chaos.src = Some 0; dst = Some 3; kinds = [ "prepare"; "decide" ] }
              ~drop:0.125 ~dup:0.25 ~delay:0.0005 ~from_:0.001 ~until:0.002 ();
            rule ();
          ];
        events = [ Chaos.Crash { at = 0.01; restart_at = None; node = 1 } ];
      };
    ]
  in
  List.iter
    (fun plan ->
      let s = Chaos.to_string plan in
      match Chaos.parse s with
      | Error e -> Alcotest.failf "roundtrip parse of %S failed: %s" s e
      | Ok plan' -> if plan' <> plan then Alcotest.failf "roundtrip changed %S" s)
    plans

let test_dsl_errors () =
  let expect_error s =
    match Chaos.parse s with
    | Ok _ -> Alcotest.failf "parse %S should fail" s
    | Error _ -> ()
  in
  expect_error "frobnicate(x=1)";
  expect_error "drop(p=banana)";
  expect_error "partition(at=0.1)";
  expect_error "crash(at=0.1)";
  expect_error "seedling=3"

let test_validate () =
  let bad_node =
    { Chaos.empty with events = [ Chaos.Crash { at = 0.1; restart_at = None; node = 9 } ] }
  in
  let bad_heal =
    {
      Chaos.empty with
      events = [ Chaos.Partition { at = 0.2; heal_at = 0.1; groups = [ [ 0 ]; [ 1 ] ] } ];
    }
  in
  let bad_prob = { Chaos.empty with rules = [ rule ~drop:1.5 () ] } in
  List.iter
    (fun plan ->
      match Chaos.validate ~nodes:4 plan with
      | Ok () -> Alcotest.fail "validate should reject the plan"
      | Error _ -> ())
    [ bad_node; bad_heal; bad_prob ];
  Alcotest.(check (result unit string))
    "good plan" (Ok ())
    (Chaos.validate ~nodes:4 (base_plan ~seed:1))

(* ---------- the network primitives the plans compile to ---------- *)

let net_config = Sss_net.Network.default_config

let make_net () =
  let sim = Sim.create () in
  let rng = Prng.create ~seed:1 in
  let net = Sss_net.Network.create sim rng ~nodes:2 ~config:net_config in
  (sim, net)

let test_drop_probability_api () =
  let sim, net = make_net () in
  Alcotest.(check (float 0.0)) "default" 0.0 (Sss_net.Network.drop_probability net);
  Sss_net.Network.set_drop_probability net 1.0;
  Alcotest.(check (float 0.0)) "set" 1.0 (Sss_net.Network.drop_probability net);
  let got = ref 0 in
  Sss_net.Network.set_handler net 1 (fun ~src:_ _ -> incr got);
  Sss_net.Network.send net ~src:0 ~dst:1 "x";
  Sim.run sim;
  Alcotest.(check int) "all dropped" 0 !got;
  Alcotest.(check int) "counted" 1 (Sss_net.Network.stats net).Sss_net.Network.dropped

let test_crash_recover () =
  let sim, net = make_net () in
  let got = ref 0 in
  Sss_net.Network.set_handler net 1 (fun ~src:_ _ -> incr got);
  Sss_net.Network.crash net 1;
  Alcotest.(check bool) "crashed" true (Sss_net.Network.is_crashed net 1);
  Sss_net.Network.send net ~src:0 ~dst:1 "lost";
  Sim.run sim;
  Alcotest.(check int) "dropped while crashed" 0 !got;
  Sss_net.Network.recover net 1;
  Alcotest.(check bool) "recovered" false (Sss_net.Network.is_crashed net 1);
  Sss_net.Network.send net ~src:0 ~dst:1 "ok";
  Sim.run sim;
  Alcotest.(check int) "delivered after recover" 1 !got

let test_perturb_duplicates_and_delay () =
  let sim, net = make_net () in
  let arrivals = ref [] in
  Sss_net.Network.set_handler net 1 (fun ~src:_ _ -> arrivals := Sim.now sim :: !arrivals);
  Sss_net.Network.set_perturb net
    (Some
       (fun ~src:_ ~dst:_ _ ->
         { Sss_net.Network.drop = false; extra_delay = 1e-3; duplicates = 1 }));
  Sss_net.Network.send net ~src:0 ~dst:1 "dup me";
  Sim.run sim;
  Alcotest.(check int) "two copies" 2 (List.length !arrivals);
  List.iter
    (fun at -> if at < 1e-3 then Alcotest.failf "arrival at %g ignored extra delay" at)
    !arrivals;
  (* removing the hook restores the healthy path *)
  Sss_net.Network.set_perturb net None;
  Sss_net.Network.send net ~src:0 ~dst:1 "clean";
  Sim.run sim;
  Alcotest.(check int) "single copy" 3 (List.length !arrivals)

(* ---------- R1: the chaos library itself must be deterministic ---------- *)

let test_chaos_lint_clean () =
  (* cwd is test/ under dune runtest, the workspace root under dune exec *)
  let source =
    if Sys.file_exists "../lib/chaos/chaos.ml" then "../lib/chaos/chaos.ml"
    else "lib/chaos/chaos.ml"
  in
  let findings = Lint.check_file ~rules:[ Lint.R1 ] ~scope_as:"lib/chaos/chaos.ml" source in
  Alcotest.(check int) "no wall-clock or Random in sss_chaos" 0 (List.length findings)

let () =
  Alcotest.run "chaos"
    [
      ( "sweep",
        [
          Alcotest.test_case "20 seeds x 4 systems, checker-accepted" `Slow test_sweep;
          Alcotest.test_case "sss RO aborts zero mid-partition" `Slow test_sss_ro_abort_zero;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same plan+seed => identical trajectory" `Quick
            test_deterministic_replay;
          Alcotest.test_case "sss_chaos is R1 lint-clean" `Quick test_chaos_lint_clean;
        ] );
      ( "liveness",
        [ Alcotest.test_case "all nodes commit after heal" `Quick test_partition_heal_liveness ]
      );
      ( "dsl",
        [
          Alcotest.test_case "parse" `Quick test_dsl_parse;
          Alcotest.test_case "roundtrip" `Quick test_dsl_roundtrip;
          Alcotest.test_case "errors" `Quick test_dsl_errors;
          Alcotest.test_case "validate" `Quick test_validate;
        ] );
      ( "network",
        [
          Alcotest.test_case "drop probability api" `Quick test_drop_probability_api;
          Alcotest.test_case "crash/recover" `Quick test_crash_recover;
          Alcotest.test_case "perturb duplicates+delay" `Quick test_perturb_duplicates_and_delay;
        ] );
    ]
