(* Tests for the simulated network: latency, priorities, CPU serialization,
   fault injection, and the RPC helpers. *)

open Sss_sim
open Sss_net

let config ?(latency_base = 20e-6) ?(latency_jitter = 0.0) ?(self_latency = 1e-6)
    ?(cpu_per_message = 0.0) () =
  Network.{ latency_base; latency_jitter; self_latency; cpu_per_message }

let make ?(nodes = 3) ?(cfg = config ()) () =
  let sim = Sim.create () in
  let rng = Prng.create ~seed:1 in
  let net = Network.create sim rng ~nodes ~config:cfg in
  (sim, net)

let test_delivery_latency () =
  let sim, net = make () in
  let got = ref None in
  Network.set_handler net 1 (fun ~src msg -> got := Some (src, msg, Sim.now sim));
  Network.send net ~src:0 ~dst:1 "hello";
  Sim.run sim;
  match !got with
  | Some (src, msg, at) ->
      Alcotest.(check int) "src" 0 src;
      Alcotest.(check string) "payload" "hello" msg;
      Alcotest.(check (float 1e-9)) "one-way latency" 20e-6 at
  | None -> Alcotest.fail "message not delivered"

let test_self_delivery () =
  let sim, net = make () in
  let at = ref (-1.0) in
  Network.set_handler net 0 (fun ~src:_ _ -> at := Sim.now sim);
  Network.send net ~src:0 ~dst:0 "me";
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "self latency" 1e-6 !at

let test_priority_under_saturation () =
  (* With a slow CPU, many same-time arrivals are served by priority. *)
  let cfg = config ~latency_base:10e-6 ~cpu_per_message:5e-6 () in
  let sim, net = make ~cfg () in
  let order = ref [] in
  Network.set_handler net 1 (fun ~src:_ msg -> order := msg :: !order);
  Network.send net ~prio:100 ~src:0 ~dst:1 "low1";
  Network.send net ~prio:100 ~src:0 ~dst:1 "low2";
  Network.send net ~prio:10 ~src:0 ~dst:1 "urgent";
  Sim.run sim;
  (* All three arrive at t=10µs; the first to be *served* wins by priority
     among those queued. *)
  Alcotest.(check (list string)) "urgent first" [ "urgent"; "low1"; "low2" ] (List.rev !order)

let test_cpu_serializes () =
  let cfg = config ~latency_base:0.0 ~self_latency:0.0 ~cpu_per_message:1e-3 () in
  let sim, net = make ~cfg () in
  let times = ref [] in
  Network.set_handler net 1 (fun ~src:_ _ -> times := Sim.now sim :: !times);
  for _ = 1 to 3 do
    Network.send net ~src:0 ~dst:1 ()
  done;
  Sim.run sim;
  Alcotest.(check (list (float 1e-9)))
    "spaced by service time"
    [ 1e-3; 2e-3; 3e-3 ]
    (List.rev !times)

let test_crash_drops () =
  let sim, net = make () in
  let count = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> incr count);
  Network.crash net 1;
  Network.send net ~src:0 ~dst:1 "lost";
  Sim.run sim;
  Alcotest.(check int) "nothing delivered" 0 !count;
  Alcotest.(check bool) "crashed" true (Network.is_crashed net 1);
  Network.recover net 1;
  Network.send net ~src:0 ~dst:1 "back";
  Sim.run sim;
  Alcotest.(check int) "delivered after recover" 1 !count;
  let st = Network.stats net in
  Alcotest.(check int) "one dropped" 1 st.Network.dropped

let test_crashed_sender () =
  let sim, net = make () in
  let count = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> incr count);
  Network.crash net 0;
  Network.send net ~src:0 ~dst:1 "from the grave";
  Sim.run sim;
  Alcotest.(check int) "crashed node sends nothing" 0 !count

let test_partition () =
  let sim, net = make () in
  let count = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> incr count);
  Network.sever net 0 1;
  Network.send net ~src:0 ~dst:1 "blocked";
  Network.send net ~src:1 ~dst:0 "blocked too";
  Sim.run sim;
  Alcotest.(check int) "severed both ways" 0 !count;
  Network.heal net 0 1;
  Network.send net ~src:0 ~dst:1 "open";
  Sim.run sim;
  Alcotest.(check int) "healed" 1 !count

let test_drop_probability () =
  let sim, net = make () in
  let count = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> incr count);
  Network.set_drop_probability net 1.0;
  for _ = 1 to 10 do
    Network.send net ~src:0 ~dst:1 ()
  done;
  Network.set_drop_probability net 0.0;
  Network.send net ~src:0 ~dst:1 ();
  Sim.run sim;
  Alcotest.(check int) "only the reliable one" 1 !count

let test_send_many () =
  let sim, net = make ~nodes:4 () in
  let hits = Array.make 4 0 in
  for n = 0 to 3 do
    Network.set_handler net n (fun ~src:_ _ -> hits.(n) <- hits.(n) + 1)
  done;
  Network.send_many net ~src:0 ~dst:[ 1; 2; 3 ] "fan";
  Sim.run sim;
  Alcotest.(check (list int)) "fanout" [ 0; 1; 1; 1 ] (Array.to_list hits)

(* ---------- Rpc ---------- *)

let test_pending_first_wins () =
  let sim = Sim.create () in
  let p = Rpc.Pending.create () in
  let id, iv = Rpc.Pending.fresh p in
  let got = ref None in
  Sim.spawn sim (fun () -> got := Some (Rpc.Pending.await sim iv));
  Sim.schedule sim ~delay:1.0 (fun () -> Rpc.Pending.resolve sim p id "fast");
  Sim.schedule sim ~delay:2.0 (fun () -> Rpc.Pending.resolve sim p id "slow");
  Sim.run sim;
  Alcotest.(check (option string)) "first response wins" (Some "fast") !got;
  Alcotest.(check int) "slot cleaned" 0 (Rpc.Pending.outstanding p)

let test_pending_unknown_id_ignored () =
  let sim = Sim.create () in
  let p : string Rpc.Pending.t = Rpc.Pending.create () in
  Sim.spawn sim (fun () -> Rpc.Pending.resolve sim p 12345 "ghost");
  Sim.run sim

let test_gather_complete () =
  let sim = Sim.create () in
  let g = Rpc.Gather.create ~expect:3 in
  let result = ref None in
  Sim.spawn sim (fun () -> result := Rpc.Gather.await sim g ~timeout:10.0);
  for i = 1 to 3 do
    Sim.schedule sim ~delay:(float_of_int i) (fun () -> Rpc.Gather.add sim g i)
  done;
  Sim.run sim;
  Alcotest.(check (option (list int))) "all responses in order" (Some [ 1; 2; 3 ]) !result

let test_gather_timeout () =
  let sim = Sim.create () in
  let g = Rpc.Gather.create ~expect:2 in
  let result = ref (Some [ 99 ]) in
  Sim.spawn sim (fun () -> result := Rpc.Gather.await sim g ~timeout:1.0);
  Sim.schedule sim ~delay:0.5 (fun () -> Rpc.Gather.add sim g 1);
  Sim.run sim;
  Alcotest.(check (option (list int))) "timed out" None !result;
  Alcotest.(check (list int)) "partial available" [ 1 ] (Rpc.Gather.received g)

let test_gather_extra_ignored () =
  let sim = Sim.create () in
  let g = Rpc.Gather.create ~expect:1 in
  Sim.spawn sim (fun () ->
      Rpc.Gather.add sim g "a";
      Rpc.Gather.add sim g "b";
      Alcotest.(check (option (list string)))
        "only the expected one" (Some [ "a" ])
        (Rpc.Gather.await sim g ~timeout:1.0));
  Sim.run sim

(* --- Reliable transport edge cases ------------------------------------- *)

type rmsg = Tracked of { token : int; inner : string } | Delivered of { token : int }

(* A two-node cell wired exactly as the reliable.mli example prescribes: the
   receiver sends a receipt for *every* copy and processes the payload only
   when [Reliable.receive] says the token is new. *)
let reliable_cell ~retry () =
  let sim, net = make ~nodes:2 () in
  let rel = Reliable.create sim net ~retry in
  let processed = ref [] and copies = ref 0 in
  Network.set_handler net 1 (fun ~src msg ->
      match msg with
      | Tracked { token; inner } ->
          incr copies;
          Network.send net ~src:1 ~dst:src (Delivered { token });
          if Reliable.receive rel token then processed := inner :: !processed
      | Delivered _ -> ());
  Network.set_handler net 0 (fun ~src:_ msg ->
      match msg with Delivered { token } -> Reliable.delivered rel token | Tracked _ -> ());
  (sim, net, rel, processed, copies)

let test_reliable_ack_after_stall () =
  (* A tiny retry budget against a severed link exhausts into a stall; a
     receipt showing up *after* the stall must be ignored — no state change,
     no resurrected retry fiber — and fresh sends must still work. *)
  let retry = Reliable.{ initial = 100e-6; max = 100e-6; limit = 2 } in
  let sim, net, rel, processed, copies = reliable_cell ~retry () in
  Network.sever net 0 1;
  let token = ref (-1) in
  Reliable.send rel ~src:0 ~dst:1 (fun t ->
      token := t;
      Tracked { token = t; inner = "stalled" });
  Sim.run sim;
  Alcotest.(check int) "gave up after the budget" 1 (Reliable.stalled rel);
  Alcotest.(check int) "no copy got through" 0 !copies;
  let retries_before = Reliable.retries rel in
  Network.heal net 0 1;
  Reliable.delivered rel !token;
  Reliable.delivered rel !token;
  Sim.run sim;
  Alcotest.(check int) "late receipt is a no-op (retries)" retries_before (Reliable.retries rel);
  Alcotest.(check int) "late receipt is a no-op (stalls)" 1 (Reliable.stalled rel);
  Reliable.send rel ~src:0 ~dst:1 (fun t -> Tracked { token = t; inner = "fresh" });
  Sim.run sim;
  Alcotest.(check (list string)) "fresh send processed" [ "fresh" ] !processed

let test_reliable_duplicate_copies () =
  (* The chaos duplication rule hands the receiver extra copies of the same
     envelope; the token dedups them to a single processing.  The retry
     schedule sits far beyond the test horizon so every copy below comes from
     the perturbation, not from a retry racing the receipt. *)
  let retry = Reliable.{ initial = 10.0; max = 10.0; limit = 3 } in
  let sim, net, rel, processed, copies = reliable_cell ~retry () in
  Network.set_perturb net
    (Some
       (fun ~src:_ ~dst:_ msg ->
         match msg with
         | Tracked _ -> { Network.no_fault with duplicates = 2 }
         | Delivered _ -> Network.no_fault));
  Reliable.send rel ~src:0 ~dst:1 (fun t -> Tracked { token = t; inner = "dup" });
  Sim.run sim;
  Alcotest.(check int) "three copies arrived" 3 !copies;
  Alcotest.(check (list string)) "processed exactly once" [ "dup" ] !processed;
  Alcotest.(check int) "no retries needed" 0 (Reliable.retries rel)

let test_reliable_dedup_across_crash () =
  (* Receipts are lost at first, so the sender keeps re-sending a payload the
     receiver has already processed; mid-stream the receiver crashes and
     recovers.  Duplicates landing after the restart must still be rejected by
     the token, and the send must settle (not stall) once receipts flow. *)
  let retry = Reliable.{ initial = 100e-6; max = 100e-6; limit = 200 } in
  let sim, net, rel, processed, copies = reliable_cell ~retry () in
  let token = ref (-1) in
  let lose_receipts = ref true in
  Network.set_perturb net
    (Some
       (fun ~src:_ ~dst:_ msg ->
         match msg with
         | Delivered _ when !lose_receipts -> { Network.no_fault with drop = true }
         | _ -> Network.no_fault));
  Reliable.send rel ~src:0 ~dst:1 (fun t ->
      token := t;
      Tracked { token = t; inner = "once" });
  let copies_at_recovery = ref 0 in
  Sim.schedule sim ~delay:350e-6 (fun () -> Network.crash net 1);
  Sim.schedule sim ~delay:800e-6 (fun () ->
      Network.recover net 1;
      copies_at_recovery := !copies);
  Sim.schedule sim ~delay:1.5e-3 (fun () -> lose_receipts := false);
  Sim.run sim;
  Alcotest.(check bool) "sender retried" true (Reliable.retries rel > 0);
  Alcotest.(check bool) "duplicates reached the receiver" true (!copies > 1);
  Alcotest.(check bool) "duplicates landed after the restart" true (!copies > !copies_at_recovery);
  Alcotest.(check (list string)) "processed exactly once" [ "once" ] !processed;
  Alcotest.(check int) "settled, not stalled" 0 (Reliable.stalled rel);
  Alcotest.(check bool) "token stays seen after restart" false (Reliable.receive rel !token)

let () =
  Alcotest.run "net"
    [
      ( "network",
        [
          Alcotest.test_case "delivery latency" `Quick test_delivery_latency;
          Alcotest.test_case "self delivery" `Quick test_self_delivery;
          Alcotest.test_case "priority under saturation" `Quick test_priority_under_saturation;
          Alcotest.test_case "cpu serializes" `Quick test_cpu_serializes;
          Alcotest.test_case "crash drops" `Quick test_crash_drops;
          Alcotest.test_case "crashed sender" `Quick test_crashed_sender;
          Alcotest.test_case "partition" `Quick test_partition;
          Alcotest.test_case "drop probability" `Quick test_drop_probability;
          Alcotest.test_case "send_many" `Quick test_send_many;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "pending first wins" `Quick test_pending_first_wins;
          Alcotest.test_case "pending unknown id" `Quick test_pending_unknown_id_ignored;
          Alcotest.test_case "gather complete" `Quick test_gather_complete;
          Alcotest.test_case "gather timeout" `Quick test_gather_timeout;
          Alcotest.test_case "gather extra ignored" `Quick test_gather_extra_ignored;
        ] );
      ( "reliable",
        [
          Alcotest.test_case "ack after stall" `Quick test_reliable_ack_after_stall;
          Alcotest.test_case "duplicate copies" `Quick test_reliable_duplicate_copies;
          Alcotest.test_case "dedup across crash" `Quick test_reliable_dedup_across_crash;
        ] );
    ]
