(* Fixture-based tests for sss_lint (tools/lint), covering both engines:

   - the legacy syntactic Parsetree pass ({!Lint.check_file}): each rule
     fires exactly where expected on a known-bad snippet, stays silent on
     the annotated clean twin, and respects scoping, allowlists, and
     baselines.  These fixtures are parsed, never compiled, so they may
     reference modules freely.
   - the typed whole-program engine ({!Typed_lint.check_source}): R7/R8/R9
     fixtures plus the typed-R2 instantiation judgment.  These fixtures are
     typechecked in-process, so they are self-contained (stdlib + unix
     only).  The r7 pair doubles as the regression proof that the syntactic
     pass cannot see alias laundering. *)

let fixture name = Filename.concat "lint_fixtures" name

(* Default logical scope: a hot, history-affecting library so every rule is
   armed. *)
let check ?rules ?owned_allow ?(scope = "lib/core/fixture.ml") name =
  Lint.check_file ?rules ?owned_allow ~scope_as:scope (fixture name)

let tcheck ?rules ?owned_allow ?(scope = "lib/core/fixture.ml") name =
  Typed_lint.check_source ?rules ?owned_allow ~scope_as:scope (fixture name)

let summary (f : Lint.finding) = (Lint.rule_name f.rule, f.line, f.lexeme)

let finding_t = Alcotest.(triple string int string)

let expect ?rules ?owned_allow ?scope name expected =
  Alcotest.(check (list finding_t))
    name expected
    (List.map summary (check ?rules ?owned_allow ?scope name))

let texpect ?rules ?owned_allow ?scope name expected =
  Alcotest.(check (list finding_t))
    name expected
    (List.map summary (tcheck ?rules ?owned_allow ?scope name))

(* ---------- each syntactic rule fires exactly where expected ---------- *)

let test_r1_bad () =
  expect "r1_bad.ml"
    [
      ("R1", 3, "Unix.gettimeofday");
      ("R1", 5, "Sys.time");
      ("R1", 7, "Random.int");
      ("R1", 9, "Stdlib.Random.float");
    ]

let test_r2_bad () =
  expect "r2_bad.ml"
    [
      ("R2", 6, "compare");
      ("R2", 8, "compare");
      ("R2", 10, "Stdlib.min");
      ("R2", 12, "Hashtbl.hash");
      ("R2", 14, "=");
      ("R2", 16, "=");
      ("R2", 18, "=");
      ("R2", 20, "<");
    ]

let test_r3_bad () =
  expect "r3_bad.ml"
    [
      ("R3", 4, "Vclock.set_into");
      ("R3", 6, "Vclock.max_into");
      ("R3", 8, "Vclock.blit");
      ("R3", 10, "Vclock.unsafe_of_array");
    ]

let test_r4_bad () =
  expect "r4_bad.ml" [ ("R4", 4, "Hashtbl.fold"); ("R4", 7, "Hashtbl.iter") ]

let test_r5_bad () =
  expect "r5_bad.ml"
    [
      ("R5", 6, "print_endline");
      ("R5", 8, "Printf.printf");
      ("R5", 10, "Format.eprintf");
      ("R5", 12, "prerr_string");
      ("R5", 14, "print_string");
    ]

let test_r6_bad () =
  expect "r6_bad.ml"
    [
      ("R6", 5, "ref");
      ("R6", 7, "Hashtbl.create");
      ("R6", 11, "{mutable record}");
      ("R6", 13, "Array.make");
      ("R6", 15, "lazy");
      ("R6", 18, "ref");
    ]

(* ---------- annotated twins are clean ---------- *)

let test_clean_twins () =
  List.iter
    (fun f -> expect f [])
    [
      "r1_clean.ml"; "r2_clean.ml"; "r3_clean.ml"; "r4_clean.ml"; "r5_clean.ml";
      "r6_clean.ml";
    ]

(* Deleting a single annotation resurrects the finding: the clean twin
   minus its attribute must flag.  We prove the mechanism on the bad/clean
   pairs above; this test pins that the *only* difference the linter sees
   is the attribute, by re-checking a clean fixture with suppressions
   defeated (rules still on, scope still hot). *)
let test_suppression_is_the_attribute () =
  (* r4_clean's folds are all annotated; the identical code in r4_bad is
     not.  Both parse to the same calls, so the attribute is what decides. *)
  Alcotest.(check int)
    "bad fixture flags" 2
    (List.length (check "r4_bad.ml"));
  Alcotest.(check int)
    "clean fixture is silent" 0
    (List.length (check "r4_clean.ml"))

(* ---------- scoping ---------- *)

let test_scoping () =
  (* R2 is armed only in hot libraries (within lib/) *)
  expect ~scope:"lib/workload/fixture.ml" "r2_bad.ml" [];
  (* R4 is armed only in history-affecting libraries *)
  expect ~scope:"lib/sim/fixture.ml" "r4_bad.ml" [];
  (* harness trees are covered since lint v2: R1 fires in bin/ too *)
  expect ~scope:"bin/fixture.ml" "r1_bad.ml"
    [
      ("R1", 3, "Unix.gettimeofday");
      ("R1", 5, "Sys.time");
      ("R1", 7, "Random.int");
      ("R1", 9, "Stdlib.Random.float");
    ];
  (* ... but the lib-only rules stay off outside lib/ *)
  expect ~scope:"bin/fixture.ml" "r6_bad.ml" [];
  expect ~scope:"tools/fixture.ml" "r4_bad.ml" [];
  (* R5 is off in the figure printer and outside lib/ *)
  expect ~scope:"lib/experiments/fixture.ml" "r5_bad.ml" [];
  expect ~scope:"bench/fixture.ml" "r5_bad.ml" [];
  (* R6 covers all of lib/ (the figure printer included) but not bin/ *)
  Alcotest.(check int)
    "R6 armed in lib/experiments" 6
    (List.length (check ~rules:[ Lint.R6 ] ~scope:"lib/experiments/fixture.ml" "r6_bad.ml"));
  (* rule selection: R1 alone sees nothing in the R2 fixture *)
  expect ~rules:[ Lint.R1 ] "r2_bad.ml" []

(* [@wallclock_ok] buys suppression only in harness scopes. *)
let test_wallclock_scoping () =
  expect ~scope:"bench/fixture.ml" "r1_harness.ml" [];
  expect ~scope:"lib/core/fixture.ml" "r1_harness.ml"
    [ ("R1", 5, "Unix.gettimeofday") ];
  texpect ~scope:"bench/fixture.ml" "r1_harness.ml" [];
  texpect ~rules:[ Lint.R1 ] ~scope:"lib/core/fixture.ml" "r1_harness.ml"
    [ ("R1", 5, "Unix.gettimeofday") ]

(* ---------- R3 allowlist ---------- *)

let test_owned_allowlist () =
  expect "r3_allow.ml" [ ("R3", 4, "Vclock.unsafe_of_array") ];
  expect ~owned_allow:[ "recompute" ] "r3_allow.ml" [];
  (* qualified Module.function form, module derived from the file name *)
  expect ~owned_allow:[ "R3_allow.recompute" ] "r3_allow.ml" [];
  expect ~owned_allow:[ "other_fn" ] "r3_allow.ml"
    [ ("R3", 4, "Vclock.unsafe_of_array") ]

(* ---------- typed engine: R7 determinism taint ---------- *)

let test_typed_r7 () =
  (* the source is reported once, at its occurrence, with the shortest
     entry-point chain *)
  texpect ~rules:[ Lint.R7 ] "r7_bad.ml" [ ("R7", 9, "Unix.gettimeofday") ];
  (match tcheck ~rules:[ Lint.R7 ] "r7_bad.ml" with
  | [ f ] ->
      Alcotest.(check (list string))
        "taint chain is entry -> source"
        [ "R7_bad.step"; "R7_bad.now" ]
        f.Lint.chain
  | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs));
  (* [@deterministic] on the boundary is a barrier *)
  texpect ~rules:[ Lint.R7 ] "r7_clean.ml" []

(* The typed engine resolves the alias chain for the intraprocedural rules
   too: R1 flags [V.gettimeofday] as Unix. *)
let test_typed_r1_alias () =
  texpect ~rules:[ Lint.R1 ] "r7_bad.ml" [ ("R1", 9, "Unix.gettimeofday") ]

(* Regression: the syntactic pass string-matches module heads, so the same
   fixture passes it clean — the laundering the typed engine exists to
   kill. *)
let test_syntactic_misses_alias () =
  expect "r7_bad.ml" [];
  expect ~rules:[ Lint.R1 ] "r7_bad.ml" []

(* ---------- typed engine: R8 hot-path allocation ---------- *)

let test_typed_r8 () =
  texpect ~rules:[ Lint.R8 ] "r8_bad.ml"
    [ ("R8", 5, "fun"); ("R8", 7, "(,)"); ("R8", 9, "Hashtbl.replace") ];
  texpect ~rules:[ Lint.R8 ] "r8_clean.ml" [];
  (* R8 is [@hot]-driven, not scope-gated: it fires in harness trees too *)
  texpect ~rules:[ Lint.R8 ] ~scope:"bench/fixture.ml" "r8_bad.ml"
    [ ("R8", 5, "fun"); ("R8", 7, "(,)"); ("R8", 9, "Hashtbl.replace") ]

(* ---------- typed engine: R9 escaping mutable state ---------- *)

let test_typed_r9 () =
  texpect ~rules:[ Lint.R9 ] "r9_bad.ml"
    [ ("R9", 11, "R9_bad.make_counter"); ("R9", 13, "Hashtbl.create") ];
  (match tcheck ~rules:[ Lint.R9 ] "r9_bad.ml" with
  | [ via_factory; direct ] ->
      Alcotest.(check (list string))
        "factory chain"
        [ "R9_bad.counter"; "R9_bad.make_counter" ]
        via_factory.Lint.chain;
      Alcotest.(check (list string)) "direct chain" [ "R9_bad.lookup" ] direct.Lint.chain
  | fs -> Alcotest.failf "expected 2 findings, got %d" (List.length fs));
  texpect ~rules:[ Lint.R9 ] "r9_clean.ml" []

(* ---------- typed engine: R2 on instantiated types ---------- *)

let test_typed_r2 () =
  (* scalars and aliases-to-scalar pass; structured types and
     still-generalized bodies (the mli-boundary trap) are flagged *)
  texpect ~rules:[ Lint.R2 ] "typed_r2.ml" [ ("R2", 12, "="); ("R2", 14, "=") ]

(* ---------- rule metadata ---------- *)

let test_rule_families () =
  let fam r = Lint.rule_family r in
  Alcotest.(check string) "R1 family" "determinism" (fam Lint.R1);
  Alcotest.(check string) "R7 family" "determinism" (fam Lint.R7);
  Alcotest.(check string) "R8 family" "allocation" (fam Lint.R8);
  Alcotest.(check string) "R6 family" "domain-safety" (fam Lint.R6);
  Alcotest.(check string) "R9 family" "domain-safety" (fam Lint.R9)

(* ---------- fingerprints and baselines ---------- *)

let test_fingerprints_unique () =
  let syntactic =
    List.concat_map
      (fun f -> check f)
      [ "r1_bad.ml"; "r2_bad.ml"; "r3_bad.ml"; "r4_bad.ml"; "r5_bad.ml"; "r6_bad.ml" ]
  in
  let typed =
    List.concat_map
      (fun f -> tcheck f)
      [ "r7_bad.ml"; "r8_bad.ml"; "r9_bad.ml"; "typed_r2.ml" ]
  in
  let fps = List.map (fun (f : Lint.finding) -> f.fingerprint) (syntactic @ typed) in
  Alcotest.(check int)
    "fingerprints are pairwise distinct" (List.length fps)
    (List.length (List.sort_uniq String.compare fps))

let test_baseline_roundtrip () =
  let findings = check "r1_bad.ml" in
  Alcotest.(check bool) "has findings" true (match findings with [] -> false | _ -> true);
  let path = Filename.temp_file "sss_lint_baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Lint.write_baseline path findings;
      let known = Lint.read_baseline path in
      let fresh, baselined = Lint.apply_baseline ~known findings in
      Alcotest.(check int) "all baselined" 0 (List.length fresh);
      Alcotest.(check int)
        "baselined count" (List.length findings)
        (List.length baselined);
      (* a new finding is not masked by the baseline *)
      let fresh, _ =
        Lint.apply_baseline ~known (check "r3_bad.ml")
      in
      Alcotest.(check int) "new findings stay fresh" 4 (List.length fresh))

(* Fingerprints carry no positions (rule|scope|context|lexeme|n), so a
   baseline written against one engine survives the other: same code, same
   identity, different line/col conventions. *)
let test_baseline_survives_engines () =
  let typed = tcheck ~rules:[ Lint.R1 ] "r1_harness.ml" in
  let path = Filename.temp_file "sss_lint_baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Lint.write_baseline path typed;
      let known = Lint.read_baseline path in
      let syntactic = check ~rules:[ Lint.R1 ] "r1_harness.ml" in
      let fresh, baselined = Lint.apply_baseline ~known syntactic in
      Alcotest.(check int) "typed baseline masks syntactic" 0 (List.length fresh);
      Alcotest.(check int) "all masked" (List.length syntactic) (List.length baselined))

(* ---------- fixture discovery (mirrors the CLI) ---------- *)

let test_collect_ml () =
  let files = Lint.collect_ml "lint_fixtures" in
  Alcotest.(check bool) "collect_ml finds fixtures" true (List.length files >= 21)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 determinism fires" `Quick test_r1_bad;
          Alcotest.test_case "R2 polymorphic compare fires" `Quick test_r2_bad;
          Alcotest.test_case "R3 Vclock ownership fires" `Quick test_r3_bad;
          Alcotest.test_case "R4 iteration order fires" `Quick test_r4_bad;
          Alcotest.test_case "R5 ad-hoc printing fires" `Quick test_r5_bad;
          Alcotest.test_case "R6 toplevel mutable state fires" `Quick test_r6_bad;
        ] );
      ( "typed",
        [
          Alcotest.test_case "R7 taint + chain + barrier" `Quick test_typed_r7;
          Alcotest.test_case "typed R1 kills alias laundering" `Quick
            test_typed_r1_alias;
          Alcotest.test_case "regression: syntactic misses the alias" `Quick
            test_syntactic_misses_alias;
          Alcotest.test_case "R8 hot-path allocation" `Quick test_typed_r8;
          Alcotest.test_case "R9 escaping mutable state" `Quick test_typed_r9;
          Alcotest.test_case "R2 judges instantiated types" `Quick test_typed_r2;
          Alcotest.test_case "rule families" `Quick test_rule_families;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "annotated twins are clean" `Quick test_clean_twins;
          Alcotest.test_case "attribute is the only difference" `Quick
            test_suppression_is_the_attribute;
          Alcotest.test_case "owned allowlist" `Quick test_owned_allowlist;
          Alcotest.test_case "wallclock_ok is harness-only" `Quick
            test_wallclock_scoping;
        ] );
      ( "scoping",
        [ Alcotest.test_case "path scoping and rule selection" `Quick test_scoping ] );
      ( "baselines",
        [
          Alcotest.test_case "fingerprints unique" `Quick test_fingerprints_unique;
          Alcotest.test_case "baseline roundtrip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "baseline survives engine change" `Quick
            test_baseline_survives_engines;
          Alcotest.test_case "collect_ml discovery" `Quick test_collect_ml;
        ] );
    ]
