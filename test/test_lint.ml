(* Fixture-based tests for sss_lint (tools/lint): each rule fires exactly
   where expected on a known-bad snippet, stays silent on the annotated
   clean twin, and respects scoping, allowlists, and baselines.

   The fixtures under lint_fixtures/ are parsed, never compiled, so they
   may reference modules freely. *)

let fixture name = Filename.concat "lint_fixtures" name

(* Default logical scope: a hot, history-affecting library so every rule is
   armed. *)
let check ?rules ?owned_allow ?(scope = "lib/core/fixture.ml") name =
  Lint.check_file ?rules ?owned_allow ~scope_as:scope (fixture name)

let summary (f : Lint.finding) = (Lint.rule_name f.rule, f.line, f.lexeme)

let finding_t = Alcotest.(triple string int string)

let expect ?rules ?owned_allow ?scope name expected =
  Alcotest.(check (list finding_t))
    name expected
    (List.map summary (check ?rules ?owned_allow ?scope name))

(* ---------- each rule fires exactly where expected ---------- *)

let test_r1_bad () =
  expect "r1_bad.ml"
    [
      ("R1", 3, "Unix.gettimeofday");
      ("R1", 5, "Sys.time");
      ("R1", 7, "Random.int");
      ("R1", 9, "Stdlib.Random.float");
    ]

let test_r2_bad () =
  expect "r2_bad.ml"
    [
      ("R2", 6, "compare");
      ("R2", 8, "compare");
      ("R2", 10, "Stdlib.min");
      ("R2", 12, "Hashtbl.hash");
      ("R2", 14, "=");
      ("R2", 16, "=");
      ("R2", 18, "=");
      ("R2", 20, "<");
    ]

let test_r3_bad () =
  expect "r3_bad.ml"
    [
      ("R3", 4, "Vclock.set_into");
      ("R3", 6, "Vclock.max_into");
      ("R3", 8, "Vclock.blit");
      ("R3", 10, "Vclock.unsafe_of_array");
    ]

let test_r4_bad () =
  expect "r4_bad.ml" [ ("R4", 4, "Hashtbl.fold"); ("R4", 7, "Hashtbl.iter") ]

let test_r5_bad () =
  expect "r5_bad.ml"
    [
      ("R5", 6, "print_endline");
      ("R5", 8, "Printf.printf");
      ("R5", 10, "Format.eprintf");
      ("R5", 12, "prerr_string");
      ("R5", 14, "print_string");
    ]

let test_r6_bad () =
  expect "r6_bad.ml"
    [
      ("R6", 5, "ref");
      ("R6", 7, "Hashtbl.create");
      ("R6", 11, "{mutable record}");
      ("R6", 13, "Array.make");
      ("R6", 15, "lazy");
      ("R6", 18, "ref");
    ]

(* ---------- annotated twins are clean ---------- *)

let test_clean_twins () =
  List.iter
    (fun f -> expect f [])
    [
      "r1_clean.ml"; "r2_clean.ml"; "r3_clean.ml"; "r4_clean.ml"; "r5_clean.ml";
      "r6_clean.ml";
    ]

(* Deleting a single annotation resurrects the finding: the clean twin
   minus its attribute must flag.  We prove the mechanism on the bad/clean
   pairs above; this test pins that the *only* difference the linter sees
   is the attribute, by re-checking a clean fixture with suppressions
   defeated (rules still on, scope still hot). *)
let test_suppression_is_the_attribute () =
  (* r4_clean's folds are all annotated; the identical code in r4_bad is
     not.  Both parse to the same calls, so the attribute is what decides. *)
  Alcotest.(check int)
    "bad fixture flags" 2
    (List.length (check "r4_bad.ml"));
  Alcotest.(check int)
    "clean fixture is silent" 0
    (List.length (check "r4_clean.ml"))

(* ---------- scoping ---------- *)

let test_scoping () =
  (* R2 is armed only in hot libraries *)
  expect ~scope:"lib/workload/fixture.ml" "r2_bad.ml" [];
  (* R4 is armed only in history-affecting libraries *)
  expect ~scope:"lib/sim/fixture.ml" "r4_bad.ml" [];
  (* bin/ is exempt from everything, R1 included *)
  expect ~scope:"bin/fixture.ml" "r1_bad.ml" [];
  (* R5 is off in the figure printer and outside lib/ *)
  expect ~scope:"lib/experiments/fixture.ml" "r5_bad.ml" [];
  expect ~scope:"bench/fixture.ml" "r5_bad.ml" [];
  (* R6 covers all of lib/ (the figure printer included) but not bin/ *)
  Alcotest.(check int)
    "R6 armed in lib/experiments" 6
    (List.length (check ~rules:[ Lint.R6 ] ~scope:"lib/experiments/fixture.ml" "r6_bad.ml"));
  expect ~scope:"bin/fixture.ml" "r6_bad.ml" [];
  (* rule selection: R1 alone sees nothing in the R2 fixture *)
  expect ~rules:[ Lint.R1 ] "r2_bad.ml" []

(* ---------- R3 allowlist ---------- *)

let test_owned_allowlist () =
  expect "r3_allow.ml" [ ("R3", 4, "Vclock.unsafe_of_array") ];
  expect ~owned_allow:[ "recompute" ] "r3_allow.ml" [];
  (* qualified Module.function form, module derived from the file name *)
  expect ~owned_allow:[ "R3_allow.recompute" ] "r3_allow.ml" [];
  expect ~owned_allow:[ "other_fn" ] "r3_allow.ml"
    [ ("R3", 4, "Vclock.unsafe_of_array") ]

(* ---------- fingerprints and baselines ---------- *)

let test_fingerprints_unique () =
  let all =
    List.concat_map
      (fun f -> check f)
      [ "r1_bad.ml"; "r2_bad.ml"; "r3_bad.ml"; "r4_bad.ml"; "r5_bad.ml"; "r6_bad.ml" ]
  in
  let fps = List.map (fun (f : Lint.finding) -> f.fingerprint) all in
  Alcotest.(check int)
    "fingerprints are pairwise distinct" (List.length fps)
    (List.length (List.sort_uniq String.compare fps))

let test_baseline_roundtrip () =
  let findings = check "r1_bad.ml" in
  Alcotest.(check bool) "has findings" true (findings <> []);
  let path = Filename.temp_file "sss_lint_baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Lint.write_baseline path findings;
      let known = Lint.read_baseline path in
      let fresh, baselined = Lint.apply_baseline ~known findings in
      Alcotest.(check int) "all baselined" 0 (List.length fresh);
      Alcotest.(check int)
        "baselined count" (List.length findings)
        (List.length baselined);
      (* a new finding is not masked by the baseline *)
      let fresh, _ =
        Lint.apply_baseline ~known (check "r3_bad.ml")
      in
      Alcotest.(check int) "new findings stay fresh" 4 (List.length fresh))

(* ---------- the real tree is clean (mirrors the @lint alias) ---------- *)

let test_repo_is_clean () =
  (* Tests run from test/ inside _build; the lint alias covers the real
     lib/ tree.  Here we only assert the engine accepts the fixtures dir
     discovery path used by the CLI. *)
  let files = Lint.collect_ml "lint_fixtures" in
  Alcotest.(check bool) "collect_ml finds fixtures" true (List.length files >= 13)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 determinism fires" `Quick test_r1_bad;
          Alcotest.test_case "R2 polymorphic compare fires" `Quick test_r2_bad;
          Alcotest.test_case "R3 Vclock ownership fires" `Quick test_r3_bad;
          Alcotest.test_case "R4 iteration order fires" `Quick test_r4_bad;
          Alcotest.test_case "R5 ad-hoc printing fires" `Quick test_r5_bad;
          Alcotest.test_case "R6 toplevel mutable state fires" `Quick test_r6_bad;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "annotated twins are clean" `Quick test_clean_twins;
          Alcotest.test_case "attribute is the only difference" `Quick
            test_suppression_is_the_attribute;
          Alcotest.test_case "owned allowlist" `Quick test_owned_allowlist;
        ] );
      ( "scoping",
        [ Alcotest.test_case "path scoping and rule selection" `Quick test_scoping ] );
      ( "baselines",
        [
          Alcotest.test_case "fingerprints unique" `Quick test_fingerprints_unique;
          Alcotest.test_case "baseline roundtrip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "collect_ml discovery" `Quick test_repo_is_clean;
        ] );
    ]
