(* Shape regression tests: the paper's qualitative evaluation claims,
   pinned as assertions at a reduced (deterministic) scale.  If a protocol
   change breaks one of the reproduced effects, this suite says so. *)

open Sss_experiments.Experiments

let base =
  {
    default_params with
    nodes = 6;
    keys = 600;
    clients = 6;
    warmup = 0.008;
    duration = 0.03;
  }

let thr p = (run p).throughput

(* Fig. 3: at high read ratios SSS clearly outperforms the 2PC baseline. *)
let test_sss_beats_2pc_read_dominated () =
  let sss = thr { base with system = Sss; ro_ratio = 0.8 } in
  let tp = thr { base with system = Twopc; ro_ratio = 0.8 } in
  Alcotest.(check bool)
    (Printf.sprintf "SSS %.0f > 1.3x 2PC %.0f at 80%% RO" sss tp)
    true
    (sss > 1.3 *. tp)

(* Fig. 3: Walter (weaker PSI) stays at or above SSS at 80% RO, but the gap
   is bounded (the paper converges to ~1.1x). *)
let test_walter_gap_bounded () =
  let sss = thr { base with system = Sss; ro_ratio = 0.8 } in
  let walter = thr { base with system = Walter; ro_ratio = 0.8 } in
  Alcotest.(check bool)
    (Printf.sprintf "Walter %.0f within [0.9x, 1.8x] of SSS %.0f" walter sss)
    true
    (walter > 0.9 *. sss && walter < 1.8 *. sss)

(* Fig. 3: 2PC is competitive at 20% read-only (within 35% of SSS). *)
let test_2pc_competitive_write_heavy () =
  let sss = thr { base with system = Sss; ro_ratio = 0.2 } in
  let tp = thr { base with system = Twopc; ro_ratio = 0.2 } in
  let ratio = sss /. tp in
  Alcotest.(check bool)
    (Printf.sprintf "SSS/2PC at 20%% RO = %.2f (competitive)" ratio)
    true
    (ratio > 0.65 && ratio < 1.55)

(* Fig. 6: ROCOCO ahead on write-heavy, SSS ahead on read-heavy. *)
let test_rococo_crossover () =
  let p ro sys = { base with system = sys; ro_ratio = ro; degree = 1 } in
  let write_heavy = thr (p 0.2 Sss) /. thr (p 0.2 Rococo) in
  let read_heavy = thr (p 0.8 Sss) /. thr (p 0.8 Rococo) in
  Alcotest.(check bool)
    (Printf.sprintf "SSS/ROCOCO %.2f at 20%% < %.2f at 80%%" write_heavy read_heavy)
    true
    (write_heavy < 1.0 && read_heavy > 1.2)

(* Fig. 8: the SSS/ROCOCO speedup grows with the read-only size. *)
let test_speedup_grows_with_ro_size () =
  let p ro_ops sys = { base with system = sys; ro_ratio = 0.8; ro_ops; degree = 1 } in
  let s2 = thr (p 2 Sss) /. thr (p 2 Rococo) in
  let s8 = thr (p 8 Sss) /. thr (p 8 Rococo) in
  Alcotest.(check bool)
    (Printf.sprintf "speedup grows: %.2f (2 reads) -> %.2f (8 reads)" s2 s8)
    true
    (s8 > s2)

(* Fig. 5 / in-text: the snapshot-queue wait is a meaningful but bounded
   fraction of update latency (the paper reports ~30%). *)
let test_wait_fraction_bounded () =
  let o = run { base with system = Sss; ro_ratio = 0.5 } in
  match (o.sss_internal, o.sss_wait) with
  | Some internal, Some wait ->
      let frac = wait /. (internal +. wait) in
      Alcotest.(check bool)
        (Printf.sprintf "wait fraction %.0f%% within [10%%, 70%%]" (frac *. 100.))
        true
        (frac > 0.10 && frac < 0.70)
  | _ -> Alcotest.fail "no latency breakdown collected"

(* In-text: abort rate rises with node count and falls with key-space size. *)
let test_abort_rate_shape () =
  let ar nodes keys =
    (run { base with system = Sss; ro_ratio = 0.2; nodes; keys }).abort_rate
  in
  let small_cluster = ar 3 600 in
  let big_cluster = ar 6 600 in
  let big_keys = ar 6 1200 in
  Alcotest.(check bool)
    (Printf.sprintf "abort rate grows with nodes (%.3f -> %.3f)" small_cluster big_cluster)
    true
    (big_cluster > small_cluster);
  Alcotest.(check bool)
    (Printf.sprintf "and shrinks with keys (%.3f -> %.3f)" big_cluster big_keys)
    true
    (big_keys < big_cluster)

(* Hardened mode preserves every shape above at the standard profile within
   a modest overhead. *)
let test_hardening_overhead_bounded_at_standard_profile () =
  let paper = thr { base with system = Sss; ro_ratio = 0.8 } in
  let hard = thr { base with system = Sss; ro_ratio = 0.8; strict = true } in
  Alcotest.(check bool)
    (Printf.sprintf "hardened %.0f >= 60%% of paper %.0f" hard paper)
    true
    (hard >= 0.6 *. paper)

(* Smoke-scale figures pinned byte-for-byte.  The figure's text and the
   run's simulator totals are a complete fingerprint of the DES trajectory:
   an engine change that reorders even two equal-time events shifts commit
   counts and shows up here.  Intentional trajectory changes (new event
   types, protocol edits) must regenerate the fixture:

     dune exec bin/golden.exe -- fig3       > test/golden/fig3_smoke.txt
     dune exec bin/golden.exe -- saturation > test/golden/saturation_smoke.txt *)
let check_golden what fig fixture_name =
  let buf = Buffer.create 4096 in
  let c = ctx ~jobs:1 ~out:(Buffer.add_string buf) () in
  let m = fig c Smoke in
  Buffer.add_string buf
    (Printf.sprintf "des_events %d\nvirtual_seconds %.6f\ncommitted_txns %d\nruns %d\n"
       m.des_events m.virtual_seconds m.committed_txns m.runs);
  let fixture =
    (* cwd is test/ under [dune runtest], the repo root under [dune exec] *)
    if Sys.file_exists ("golden/" ^ fixture_name) then "golden/" ^ fixture_name
    else "test/golden/" ^ fixture_name
  in
  let expected = In_channel.with_open_text fixture In_channel.input_all in
  Alcotest.(check string) what expected (Buffer.contents buf)

let test_fig3_smoke_golden () = check_golden "fig3 smoke trajectory" fig3 "fig3_smoke.txt"

(* The open-loop engine and online GC under the same byte-level pin: the
   saturation smoke sweep covers Poisson and Ramp arrivals, admission
   rejection, and watermark GC for both SSS and the 2PC baseline. *)
let test_saturation_smoke_golden () =
  check_golden "saturation smoke trajectory" saturation "saturation_smoke.txt"

let () =
  Alcotest.run "shapes"
    [
      ( "paper-claims",
        [
          Alcotest.test_case "SSS > 2PC read-dominated" `Slow test_sss_beats_2pc_read_dominated;
          Alcotest.test_case "Walter gap bounded" `Slow test_walter_gap_bounded;
          Alcotest.test_case "2PC competitive write-heavy" `Slow
            test_2pc_competitive_write_heavy;
          Alcotest.test_case "ROCOCO crossover" `Slow test_rococo_crossover;
          Alcotest.test_case "speedup grows with ro size" `Slow
            test_speedup_grows_with_ro_size;
          Alcotest.test_case "wait fraction bounded" `Slow test_wait_fraction_bounded;
          Alcotest.test_case "abort-rate shape" `Slow test_abort_rate_shape;
          Alcotest.test_case "hardening overhead bounded" `Slow
            test_hardening_overhead_bounded_at_standard_profile;
          Alcotest.test_case "fig3 smoke golden trajectory" `Slow test_fig3_smoke_golden;
          Alcotest.test_case "saturation smoke golden trajectory" `Slow
            test_saturation_smoke_golden;
        ] );
    ]
