(* API-contract tests: misuse detection, the retry helper, the workload
   driver's knobs, and small utility contracts. *)

open Sss_sim
open Sss_data
open Sss_kv

let make ?(nodes = 2) ?(keys = 16) () =
  let sim = Sim.create () in
  let cl =
    Kv.create sim
      { Config.default with nodes; replication_degree = 1; total_keys = keys }
  in
  (sim, cl)

let in_fiber sim f =
  let out = ref None in
  Sim.spawn sim (fun () -> out := Some (f ()));
  Sim.run sim;
  Option.get !out

(* ---------- misuse ---------- *)

let test_double_commit_rejected () =
  let sim, cl = make () in
  in_fiber sim (fun () ->
      let t = Kv.begin_txn cl ~node:0 ~read_only:false in
      Kv.write t 1 "x";
      ignore (Kv.commit t);
      match Kv.commit t with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "second commit should raise")

let test_read_after_finish_rejected () =
  let sim, cl = make () in
  in_fiber sim (fun () ->
      let t = Kv.begin_txn cl ~node:0 ~read_only:true in
      ignore (Kv.read t 1);
      ignore (Kv.commit t);
      match Kv.read t 2 with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "read after commit should raise")

let test_abort_after_commit_rejected () =
  let sim, cl = make () in
  in_fiber sim (fun () ->
      let t = Kv.begin_txn cl ~node:0 ~read_only:true in
      ignore (Kv.commit t);
      match Kv.abort t with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "abort after commit should raise")

let test_unknown_key_rejected () =
  let sim, cl = make ~keys:4 () in
  in_fiber sim (fun () ->
      let t = Kv.begin_txn cl ~node:0 ~read_only:true in
      match Kv.read t 9999 with
      | exception Not_found -> Kv.abort t
      | exception Invalid_argument _ -> Kv.abort t
      | _ -> Alcotest.fail "unknown key should raise")

(* ---------- with_txn ---------- *)

let test_with_txn_commits () =
  let sim, cl = make () in
  let v =
    in_fiber sim (fun () ->
        Kv.with_txn cl ~node:0 ~read_only:false (fun t ->
            Kv.write t 3 "via-helper";
            "done"))
  in
  Alcotest.(check (option string)) "body result" (Some "done") v;
  (* the write is durable and visible to a later transaction *)
  let sim2 = Sim.create () in
  ignore sim2;
  let seen =
    in_fiber sim (fun () ->
        Kv.with_txn cl ~node:1 ~read_only:true (fun t -> Kv.read t 3))
  in
  Alcotest.(check (option string)) "visible later" (Some "via-helper") seen

let test_with_txn_retries_conflict () =
  let sim, cl = make () in
  let attempts = ref 0 in
  let result = ref None in
  let barrier = Sim.Cond.create () in
  let reads = ref 0 in
  (* two RMWs on the same key, synchronized so both read before either
     commits: one will abort and must be retried by the helper *)
  let body t =
    incr attempts;
    ignore (Kv.read t 5);
    if !attempts <= 1 then begin
      incr reads;
      Sim.Cond.broadcast sim barrier;
      Sim.Cond.await sim barrier (fun () -> !reads >= 2)
    end;
    Kv.write t 5 "retry-winner"
  in
  Sim.spawn sim (fun () -> result := Kv.with_txn cl ~node:0 ~read_only:false body);
  Sim.spawn sim (fun () ->
      let t = Kv.begin_txn cl ~node:1 ~read_only:false in
      ignore (Kv.read t 5);
      incr reads;
      Sim.Cond.broadcast sim barrier;
      Sim.Cond.await sim barrier (fun () -> !reads >= 2);
      Kv.write t 5 "other";
      ignore (Kv.commit t));
  Sim.run sim;
  Alcotest.(check bool) "helper eventually committed" true (!result = Some ());
  Alcotest.(check bool)
    (Printf.sprintf "body ran more than once (%d)" !attempts)
    true (!attempts >= 1)

let test_with_txn_exception_aborts () =
  let sim, cl = make () in
  in_fiber sim (fun () ->
      (match
         Kv.with_txn cl ~node:0 ~read_only:true (fun t ->
             ignore (Kv.read t 1);
             failwith "boom")
       with
      | exception Failure m -> Alcotest.(check string) "propagated" "boom" m
      | _ -> Alcotest.fail "exception should propagate");
      ());
  (* and the cluster is clean afterwards (the abort sent Removes) *)
  match Kv.quiescent cl with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* ---------- driver knobs ---------- *)

let driver_ops cl =
  {
    Sss_workload.Driver.begin_txn = (fun ~node ~read_only -> Kv.begin_txn cl ~node ~read_only);
    read = Kv.read;
    write = Kv.write;
    commit = Kv.commit;
  }

let test_driver_retry_aborts () =
  (* with retry_aborts, aborted update transactions are re-attempted on the
     same keys; commits should exceed the no-retry run under contention *)
  let run retry =
    let sim, cl = make ~nodes:3 ~keys:6 () in
    let r =
      Sss_workload.Driver.run sim ~nodes:3 ~total_keys:6
        ~local_keys:(fun _ -> [||])
        ~profile:(Sss_workload.Driver.paper_profile ~read_only_ratio:0.0)
        ~load:
          {
            Sss_workload.Driver.default_load with
            clients_per_node = 3;
            warmup = 0.002;
            duration = 0.02;
            retry_aborts = retry;
            seed = 4;
          }
        ~ops:(driver_ops cl)
    in
    r
  in
  let no_retry = run false and retry = run true in
  Alcotest.(check bool) "contention produced aborts" true
    (no_retry.Sss_workload.Driver.aborted > 0);
  Alcotest.(check bool) "both made progress" true
    (retry.Sss_workload.Driver.committed > 0 && no_retry.Sss_workload.Driver.committed > 0)

let test_driver_locality_draws_local () =
  let sim, cl = make ~nodes:2 ~keys:16 () in
  let local0 = Replication.keys_at cl.State.repl 0 in
  let r =
    Sss_workload.Driver.run sim ~nodes:2 ~total_keys:16
      ~local_keys:(fun n -> Replication.keys_at cl.State.repl n)
      ~profile:
        { Sss_workload.Driver.read_only_ratio = 1.0; update_ops = 2; ro_ops = 2;
          locality = 1.0 }
      ~load:
        {
          Sss_workload.Driver.default_load with
          clients_per_node = 2;
          warmup = 0.001;
          duration = 0.01;
          seed = 6;
        }
      ~ops:(driver_ops cl)
  in
  Alcotest.(check bool) "progress" true (r.Sss_workload.Driver.committed > 10);
  (* with locality = 1.0, clients on node 0 only ever read node-0 keys *)
  let h = Kv.history cl in
  let ok = ref true in
  List.iter
    (fun { Sss_consistency.History.event; _ } ->
      match event with
      | Sss_consistency.History.Read { txn; key; _ } ->
          if txn.Ids.node = 0 && not (Array.exists (( = ) key) local0) then ok := false
      | _ -> ())
    (Sss_consistency.History.events h);
  Alcotest.(check bool) "node-0 clients stayed local" true !ok

(* ---------- utility contracts ---------- *)

let test_pretty_printers () =
  Alcotest.(check string) "vclock" "[1,2,3]"
    (Vclock.to_string (Vclock.of_array [| 1; 2; 3 |]));
  Alcotest.(check string) "genesis" "T<genesis>" (Ids.txn_to_string Ids.genesis);
  let q = Squeue.create () in
  Squeue.insert_read q ~txn:{ Ids.node = 1; local = 2 } ~sid:3;
  Alcotest.(check bool) "squeue pp nonempty" true
    (String.length (Format.asprintf "%a" Squeue.pp q) > 0)

let test_equeue_surface () =
  let q = Equeue.create ~buckets:64 ~width:1e-6 () in
  let ran = ref 0 in
  let bump _ = incr ran in
  List.iter (fun t -> Equeue.push q ~time:t ~key:0 bump (Obj.repr ())) [ 3e-6; 1e-6; 2e-6 ];
  Alcotest.(check int) "length" 3 (Equeue.length q);
  Alcotest.(check bool) "min_time" true (Equeue.min_time q = 1e-6);
  Alcotest.(check bool) "pop" true (Equeue.pop q);
  Alcotest.(check (float 1e-18)) "popped_time" 1e-6 (Equeue.popped_time q);
  Equeue.run_popped q;
  Alcotest.(check int) "payload ran" 1 !ran;
  Alcotest.(check int) "length after pop" 2 (Equeue.length q)

let test_prng_pick () =
  let g = Prng.create ~seed:1 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 50 do
    let x = Prng.pick g arr in
    Alcotest.(check bool) "member" true (Array.exists (( = ) x) arr)
  done

let test_network_stats_accumulate () =
  let sim = Sim.create () in
  let rng = Prng.create ~seed:1 in
  let net =
    Sss_net.Network.create ~size_of:String.length sim rng ~nodes:2
      ~config:Sss_net.Network.default_config
  in
  Sss_net.Network.set_handler net 1 (fun ~src:_ _ -> ());
  Sss_net.Network.send net ~src:0 ~dst:1 "hello";
  Sss_net.Network.send net ~src:0 ~dst:1 "worlds!";
  Sim.run sim;
  let st = Sss_net.Network.stats net in
  Alcotest.(check int) "bytes counted" 12 st.Sss_net.Network.bytes;
  Alcotest.(check int) "sent" 2 st.Sss_net.Network.sent

let () =
  Alcotest.run "api"
    [
      ( "misuse",
        [
          Alcotest.test_case "double commit" `Quick test_double_commit_rejected;
          Alcotest.test_case "read after finish" `Quick test_read_after_finish_rejected;
          Alcotest.test_case "abort after commit" `Quick test_abort_after_commit_rejected;
          Alcotest.test_case "unknown key" `Quick test_unknown_key_rejected;
        ] );
      ( "with_txn",
        [
          Alcotest.test_case "commits" `Quick test_with_txn_commits;
          Alcotest.test_case "retries conflict" `Quick test_with_txn_retries_conflict;
          Alcotest.test_case "exception aborts" `Quick test_with_txn_exception_aborts;
        ] );
      ( "driver",
        [
          Alcotest.test_case "retry aborts" `Quick test_driver_retry_aborts;
          Alcotest.test_case "locality" `Quick test_driver_locality_draws_local;
        ] );
      ( "utilities",
        [
          Alcotest.test_case "pretty printers" `Quick test_pretty_printers;
          Alcotest.test_case "equeue surface" `Quick test_equeue_surface;
          Alcotest.test_case "prng pick" `Quick test_prng_pick;
          Alcotest.test_case "network byte stats" `Quick test_network_stats_accumulate;
        ] );
    ]
