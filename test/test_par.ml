(* sss_par: the deterministic domain-pool runner.  Unit tests for the pool
   itself (ordering, edge counts, failure propagation), the shared sweep
   helpers, and the contract the whole experiment engine rests on: running
   a sweep at -j1 and at -j4 produces byte-identical output. *)

module Pool = Sss_par.Pool
module Sweep = Sss_par.Sweep
module E = Sss_experiments.Experiments

(* ---------- pool units ---------- *)

let test_empty () =
  let pool = Pool.create ~jobs:4 in
  Alcotest.(check (array int)) "0 tasks" [||] (Pool.map pool (fun x -> x) [||]);
  Alcotest.(check (list int)) "0 tasks (list)" [] (Pool.map_list pool (fun x -> x) [])

let test_single () =
  let pool = Pool.create ~jobs:4 in
  Alcotest.(check (array int)) "1 task" [| 49 |] (Pool.map pool (fun x -> x * x) [| 7 |])

let test_many_tasks_few_domains () =
  (* tasks >> domains: every slot filled, in submission order *)
  let pool = Pool.create ~jobs:4 in
  let n = 1000 in
  let tasks = Array.init n (fun i -> i) in
  let got = Pool.map pool (fun i -> (i * i) + 1) tasks in
  Alcotest.(check (array int)) "ordered results" (Array.init n (fun i -> (i * i) + 1)) got

let test_jobs_one_never_spawns () =
  (* jobs=1 runs on the caller's domain: side effects happen in task order *)
  let pool = Pool.create ~jobs:1 in
  let order = ref [] in
  let _ = Pool.map pool (fun i -> order := i :: !order) [| 0; 1; 2; 3 |] in
  Alcotest.(check (list int)) "sequential order" [ 3; 2; 1; 0 ] !order

exception Boom of int

let test_exception_propagates () =
  let pool = Pool.create ~jobs:4 in
  (* every task fails; the pool must re-raise the lowest-index failure
     (task 0 is always claimed and run, so the winner is deterministic) *)
  (match Pool.map pool (fun i -> raise (Boom i)) (Array.init 64 (fun i -> i)) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> Alcotest.(check int) "lowest-index failure" 0 i);
  (* a failed map cancels cleanly: the same pool still works *)
  Alcotest.(check (array int))
    "pool reusable after failure" [| 0; 2; 4 |]
    (Pool.map pool (fun i -> 2 * i) [| 0; 1; 2 |]);
  (* sequential path raises too *)
  let seq = Pool.create ~jobs:1 in
  match Pool.map seq (fun i -> if i = 2 then raise (Boom i) else i) [| 0; 1; 2; 3 |] with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> Alcotest.(check int) "sequential failure index" 2 i

let test_invalid_jobs () =
  Alcotest.check_raises "jobs=0 rejected" (Invalid_argument "Pool.create: jobs must be >= 1")
    (fun () -> ignore (Pool.create ~jobs:0))

(* ---------- sweep helpers ---------- *)

let test_sweep_helpers () =
  Alcotest.(check (list int)) "seeds 1..n" [ 1; 2; 3; 4 ] (Sweep.seeds 4);
  Alcotest.(check (list int)) "seeds with base" [ 11; 12 ] (Sweep.seeds ~base:10 2);
  Alcotest.(check (list int)) "seeds 0" [] (Sweep.seeds 0);
  Alcotest.(check (list (pair string int)))
    "cross is row-major"
    [ ("a", 1); ("a", 2); ("b", 1); ("b", 2) ]
    (Sweep.cross [ "a"; "b" ] [ 1; 2 ])

(* ---------- determinism: -j1 and -j4 are byte-identical ---------- *)

let meters_tuple (m : E.meters) =
  ((m.E.des_events, m.E.virtual_seconds), (m.E.committed_txns, m.E.runs))

let test_figure_determinism () =
  let capture jobs =
    let buf = Buffer.create 4096 in
    let c = E.ctx ~jobs ~out:(Buffer.add_string buf) () in
    let m = E.fig3 c E.Smoke in
    (Buffer.contents buf, m)
  in
  let text1, m1 = capture 1 in
  let text4, m4 = capture 4 in
  Alcotest.(check string) "fig3 text identical at -j1 and -j4" text1 text4;
  Alcotest.(check bool) "fig3 prints something" true (String.length text1 > 0);
  Alcotest.(check (pair (pair int (float 0.)) (pair int int)))
    "fig3 meters identical" (meters_tuple m1) (meters_tuple m4)

let test_run_seeds_determinism () =
  let p = { E.default_params with nodes = 3; keys = 24; clients = 2; duration = 0.01 } in
  let seeds = Sweep.seeds 6 in
  let digest outs =
    List.map (fun (o : E.outcome) -> (o.E.committed, o.E.des_events)) outs
  in
  let at jobs = digest (E.run_seeds (E.ctx ~jobs ()) p ~seeds) in
  Alcotest.(check (list (pair int int)))
    "run_seeds identical at -j1 and -j4" (at 1) (at 4)

(* a chaos sweep through the pool: same fault plan + same seeds => same
   trajectories at any jobs count *)
let test_chaos_sweep_determinism () =
  let module Chaos = Sss_chaos.Chaos in
  let any = { Chaos.src = None; dst = None; kinds = [] } in
  let rule drop dup =
    { Chaos.target = any; drop; dup; delay = 0.0; from_ = 0.0; until = Float.infinity }
  in
  let chaos_one seed =
    let plan = { Chaos.seed; rules = [ rule 0.03 0.0; rule 0.0 0.02 ]; events = [] } in
    let sim = Sss_sim.Sim.create () in
    let config =
      { Sss_kv.Config.default with nodes = 4; replication_degree = 2; total_keys = 24;
        seed; fault_tolerance = true }
    in
    let cl = Sss_kv.Kv.create sim config in
    ignore (Chaos.install sim (Sss_kv.Kv.network cl) ~kind_of:Sss_kv.Message.kind_name plan);
    let result =
      Sss_workload.Driver.run sim ~nodes:4 ~total_keys:24
        ~local_keys:(fun _ -> [||])
        ~profile:(Sss_workload.Driver.paper_profile ~read_only_ratio:0.5)
        ~load:
          {
            Sss_workload.Driver.default_load with
            clients_per_node = 2;
            warmup = 0.005;
            duration = 0.02;
            seed;
          }
        ~ops:
          {
            Sss_workload.Driver.begin_txn =
              (fun ~node ~read_only -> Sss_kv.Kv.begin_txn cl ~node ~read_only);
            read = Sss_kv.Kv.read;
            write = Sss_kv.Kv.write;
            commit = Sss_kv.Kv.commit;
          }
    in
    (result.Sss_workload.Driver.committed, Sss_sim.Sim.events_processed sim)
  in
  let seeds = Sweep.seeds 6 in
  let at jobs = Pool.map_list (Pool.create ~jobs) chaos_one seeds in
  Alcotest.(check (list (pair int int)))
    "chaos sweep identical at -j1 and -j4" (at 1) (at 4)

(* the open-loop arrival engine and the online GC through the pool: the
   saturation figure (Poisson + Ramp arrivals, admission rejection,
   watermark GC, for two protocols) must be byte-identical at -j1 and -j4 *)
let test_saturation_determinism () =
  let capture jobs =
    let buf = Buffer.create 4096 in
    let c = E.ctx ~jobs ~out:(Buffer.add_string buf) () in
    let m = E.saturation c E.Smoke in
    (Buffer.contents buf, m)
  in
  let text1, m1 = capture 1 in
  let text4, m4 = capture 4 in
  Alcotest.(check string) "saturation text identical at -j1 and -j4" text1 text4;
  Alcotest.(check bool) "saturation prints something" true (String.length text1 > 0);
  Alcotest.(check (pair (pair int (float 0.)) (pair int int)))
    "saturation meters identical" (meters_tuple m1) (meters_tuple m4);
  Alcotest.(check bool) "saturation sweeps admitted traffic" true (m1.E.accepted > 0);
  Alcotest.(check bool) "saturation GC collected versions" true (m1.E.gc_dropped > 0)

(* a single open-loop + GC point, digested down to its admission counters
   and the DES event total: identical through the pool at any jobs count *)
let test_open_loop_run_determinism () =
  let p =
    {
      E.default_params with
      nodes = 3;
      keys = 24;
      duration = 0.02;
      arrival = Some (Sss_workload.Driver.Poisson 4_000.0);
      queue_capacity = 8;
      workers = 4;
      gc = true;
    }
  in
  let digest outs =
    List.map
      (fun (o : E.outcome) ->
        ((o.E.offered, o.E.accepted, o.E.rejected), (o.E.committed, o.E.des_events)))
      outs
  in
  let at jobs = digest (E.run_seeds (E.ctx ~jobs ()) p ~seeds:(Sweep.seeds 6)) in
  Alcotest.(check
      (list (pair (triple int int int) (pair int int))))
    "open-loop run_seeds identical at -j1 and -j4" (at 1) (at 4)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "0 tasks" `Quick test_empty;
          Alcotest.test_case "1 task" `Quick test_single;
          Alcotest.test_case "tasks >> domains" `Quick test_many_tasks_few_domains;
          Alcotest.test_case "jobs=1 is sequential" `Quick test_jobs_one_never_spawns;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
          Alcotest.test_case "invalid jobs" `Quick test_invalid_jobs;
        ] );
      ( "sweep",
        [ Alcotest.test_case "seeds and cross" `Quick test_sweep_helpers ] );
      ( "determinism",
        [
          Alcotest.test_case "figure -j1 = -j4" `Slow test_figure_determinism;
          Alcotest.test_case "run_seeds -j1 = -j4" `Quick test_run_seeds_determinism;
          Alcotest.test_case "chaos sweep -j1 = -j4" `Quick test_chaos_sweep_determinism;
          Alcotest.test_case "saturation -j1 = -j4" `Slow test_saturation_determinism;
          Alcotest.test_case "open-loop run -j1 = -j4" `Quick test_open_loop_run_determinism;
        ] );
    ]
