(* Tests for the history recorder and the DSG-based consistency checker,
   using hand-crafted histories exhibiting classic anomalies. *)

open Sss_data
open Sss_consistency

let tx node local : Ids.txn = { node; local }

let mk events =
  let h = History.create () in
  List.iteri (fun i e -> History.record h ~at:(float_of_int i) e) events;
  h

let check_ok what = function
  | Ok () -> ()
  | Error msg -> Alcotest.fail (Printf.sprintf "%s should pass: %s" what msg)

let check_err what = function
  | Ok () -> Alcotest.fail (Printf.sprintf "%s should detect a violation" what)
  | Error _ -> ()

let t1 = tx 0 1
let t2 = tx 1 1
let t3 = tx 2 1
let t4 = tx 3 1

let test_serial_history_passes () =
  (* T1 writes k0; T2 then reads it and overwrites it. Strictly serial. *)
  let h =
    mk
      History.
        [
          Begin { txn = t1; ro = false; node = 0 };
          Install { txn = t1; key = 0 };
          Commit { txn = t1; ws = [] };
          Begin { txn = t2; ro = false; node = 1 };
          Read { txn = t2; key = 0; writer = t1 };
          Install { txn = t2; key = 0 };
          Commit { txn = t2; ws = [] };
        ]
  in
  check_ok "external consistency" (Checker.external_consistency h);
  check_ok "serializability" (Checker.serializability h);
  check_ok "no lost updates" (Checker.no_lost_updates h);
  check_ok "ro abort free" (Checker.read_only_abort_free h);
  Alcotest.(check int) "committed" 2 (Checker.committed_count h);
  Alcotest.(check int) "aborted" 0 (Checker.aborted_count h)

let test_stale_read_after_completion () =
  (* T1 installs and commits; T2 begins afterwards but reads the genesis
     version.  Serializable (T2 serializes first) but NOT external
     consistent when both clients sit on the same node — and flagged by the
     strict (global real-time) check even across nodes. *)
  let h node2 =
    mk
      History.
        [
          Begin { txn = t1; ro = false; node = 0 };
          Install { txn = t1; key = 0 };
          Commit { txn = t1; ws = [] };
          Begin { txn = t2; ro = true; node = node2 };
          Read { txn = t2; key = 0; writer = Ids.genesis };
          Commit { txn = t2; ws = [] };
        ]
  in
  check_ok "serializability" (Checker.serializability (h 0));
  check_err "same-session external consistency" (Checker.external_consistency (h 0));
  (* Cross-node, non-communicating: the session check accepts it... *)
  check_ok "cross-node session check" (Checker.external_consistency (h 1));
  (* ...but the strict global real-time check does not. *)
  check_err "strict external consistency" (Checker.external_consistency_strict (h 1))

let test_write_skew_detected () =
  let h =
    mk
      History.
        [
          Begin { txn = t1; ro = false; node = 0 };
          Begin { txn = t2; ro = false; node = 1 };
          Read { txn = t1; key = 0; writer = Ids.genesis };
          Read { txn = t2; key = 1; writer = Ids.genesis };
          Install { txn = t1; key = 1 };
          Install { txn = t2; key = 0 };
          Commit { txn = t1; ws = [] };
          Commit { txn = t2; ws = [] };
        ]
  in
  check_err "write skew" (Checker.serializability h);
  check_err "write skew (external)" (Checker.external_consistency h);
  (* Write skew is not a lost update: neither read the key it wrote. *)
  check_ok "no lost updates" (Checker.no_lost_updates h)

let test_lost_update_detected () =
  let h =
    mk
      History.
        [
          Begin { txn = t1; ro = false; node = 0 };
          Begin { txn = t2; ro = false; node = 1 };
          Read { txn = t1; key = 0; writer = Ids.genesis };
          Read { txn = t2; key = 0; writer = Ids.genesis };
          Install { txn = t1; key = 0 };
          Install { txn = t2; key = 0 };
          Commit { txn = t1; ws = [] };
          Commit { txn = t2; ws = [] };
        ]
  in
  check_err "lost update" (Checker.no_lost_updates h);
  check_err "lost update is not serializable" (Checker.serializability h)

let test_long_fork_detected () =
  (* Walter's PSI admits this: two read-only transactions observe two
     non-conflicting writers in opposite orders (Adya's anomaly, the exact
     situation Fig. 2 of the paper prevents). *)
  let h =
    mk
      History.
        [
          Begin { txn = t1; ro = false; node = 0 };
          Begin { txn = t2; ro = false; node = 1 };
          Install { txn = t1; key = 0 };
          Install { txn = t2; key = 1 };
          Begin { txn = t3; ro = true; node = 2 };
          Read { txn = t3; key = 0; writer = t1 };
          Read { txn = t3; key = 1; writer = Ids.genesis };
          Begin { txn = t4; ro = true; node = 3 };
          Read { txn = t4; key = 0; writer = Ids.genesis };
          Read { txn = t4; key = 1; writer = t2 };
          Commit { txn = t1; ws = [] };
          Commit { txn = t2; ws = [] };
          Commit { txn = t3; ws = [] };
          Commit { txn = t4; ws = [] };
        ]
  in
  check_err "long fork" (Checker.serializability h);
  (* But each read-modify-write is intact, so PSI-style checks pass. *)
  check_ok "no lost updates" (Checker.no_lost_updates h)

let test_aborted_txns_excluded () =
  let h =
    mk
      History.
        [
          Begin { txn = t1; ro = false; node = 0 };
          Read { txn = t1; key = 0; writer = Ids.genesis };
          Abort { txn = t1 };
          Begin { txn = t2; ro = false; node = 1 };
          Install { txn = t2; key = 0 };
          Commit { txn = t2; ws = [] };
        ]
  in
  (* The aborted read of genesis would be a stale read if counted. *)
  check_ok "aborted excluded" (Checker.external_consistency h);
  Alcotest.(check int) "aborted counted" 1 (Checker.aborted_count h)

let test_read_only_abort_flagged () =
  let h =
    mk
      History.
        [ Begin { txn = t1; ro = true; node = 0 }; Abort { txn = t1 } ]
  in
  check_err "ro abort" (Checker.read_only_abort_free h);
  let h2 =
    mk History.[ Begin { txn = t1; ro = false; node = 0 }; Abort { txn = t1 } ]
  in
  check_ok "update abort fine" (Checker.read_only_abort_free h2)

let test_uncommitted_installer_constrains () =
  (* t1 installed but its external commit was not recorded (e.g. still parked
     in a snapshot-queue at the end of the run): it must still participate in
     dependency edges. *)
  let h =
    mk
      History.
        [
          Begin { txn = t1; ro = false; node = 0 };
          Install { txn = t1; key = 0 };
          Begin { txn = t2; ro = true; node = 1 };
          Read { txn = t2; key = 0; writer = t1 };
          Commit { txn = t2; ws = [] };
        ]
  in
  check_ok "partial run ok" (Checker.external_consistency h);
  let edges = Checker.dependency_edges h in
  Alcotest.(check bool) "wr edge from uncommitted installer" true
    (List.exists (fun (s, d, l) -> Ids.equal_txn s t1 && Ids.equal_txn d t2 && l = "wr") edges)

let test_dependency_edge_kinds () =
  let h =
    mk
      History.
        [
          Begin { txn = t1; ro = false; node = 0 };
          Install { txn = t1; key = 0 };
          Commit { txn = t1; ws = [] };
          Begin { txn = t2; ro = false; node = 1 };
          Read { txn = t2; key = 0; writer = t1 };
          Install { txn = t2; key = 0 };
          Commit { txn = t2; ws = [] };
          Begin { txn = t3; ro = true; node = 2 };
          Read { txn = t3; key = 0; writer = t1 };
          Commit { txn = t3; ws = [] };
        ]
  in
  let edges = Checker.dependency_edges h in
  let has s d l =
    List.exists (fun (a, b, lbl) -> Ids.equal_txn a s && Ids.equal_txn b d && lbl = l) edges
  in
  Alcotest.(check bool) "wr t1->t2" true (has t1 t2 "wr");
  Alcotest.(check bool) "ww t1->t2" true (has t1 t2 "ww");
  Alcotest.(check bool) "rw t3->t2 (t3 read the overwritten version)" true (has t3 t2 "rw");
  Alcotest.(check bool) "no self edges" false (List.exists (fun (a, b, _) -> Ids.equal_txn a b) edges)

let test_to_dot_renders_edges () =
  let h =
    mk
      History.
        [
          Begin { txn = t1; ro = false; node = 0 };
          Install { txn = t1; key = 0 };
          Commit { txn = t1; ws = [] };
          Begin { txn = t2; ro = true; node = 1 };
          Read { txn = t2; key = 0; writer = t1 };
          Commit { txn = t2; ws = [] };
        ]
  in
  let dot = Checker.to_dot h in
  let contains needle =
    let len = String.length needle in
    let rec go i =
      i + len <= String.length dot && (String.sub dot i len = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "digraph" true (contains "digraph dsg");
  Alcotest.(check bool) "wr edge" true (contains "label=\"wr\"");
  Alcotest.(check bool) "reader ellipse" true (contains "shape=ellipse");
  Alcotest.(check bool) "writer box" true (contains "shape=box")

let test_strict_vs_session_semantics () =
  (* same history, different real-time scopes: cross-node completion->begin
     precedence is only an edge under the strict check *)
  let cross =
    mk
      History.
        [
          Begin { txn = t1; ro = false; node = 0 };
          Install { txn = t1; key = 0 };
          Commit { txn = t1; ws = [] };
          Begin { txn = t2; ro = true; node = 1 };
          Read { txn = t2; key = 0; writer = Ids.genesis };
          Commit { txn = t2; ws = [] };
        ]
  in
  check_ok "session accepts cross-node" (Checker.external_consistency cross);
  check_err "strict rejects" (Checker.external_consistency_strict cross);
  (* overlapping transactions are unconstrained even under strict *)
  let overlapping =
    mk
      History.
        [
          Begin { txn = t1; ro = false; node = 0 };
          Begin { txn = t2; ro = true; node = 0 };
          Install { txn = t1; key = 0 };
          Commit { txn = t1; ws = [] };
          Read { txn = t2; key = 0; writer = Ids.genesis };
          Commit { txn = t2; ws = [] };
        ]
  in
  check_ok "overlap fine under strict" (Checker.external_consistency_strict overlapping)

let test_disabled_recorder () =
  let h = History.create ~enabled:false () in
  History.record h ~at:0.0 (History.Commit { txn = t1; ws = [] });
  Alcotest.(check int) "nothing recorded" 0 (History.length h);
  Alcotest.(check int) "no txns" 0 (Checker.txn_count h)

(* ---------- mutation tests: a real history, minimally corrupted ----------

   The hand-crafted anomalies above prove the checker CAN reject; these
   prove it rejects when a single event of an actual checker-clean SSS
   execution is falsified.  Each mutation models a specific protocol bug:
   serving a read from a stale version, acknowledging commits out of order,
   and losing an install. *)

let real_history () =
  let sim = Sss_sim.Sim.create () in
  let config =
    { Sss_kv.Config.default with nodes = 2; replication_degree = 1; total_keys = 12; seed = 5 }
  in
  let cl = Sss_kv.Kv.create sim config in
  let ops =
    {
      Sss_workload.Driver.begin_txn =
        (fun ~node ~read_only -> Sss_kv.Kv.begin_txn cl ~node ~read_only);
      read = Sss_kv.Kv.read;
      write = Sss_kv.Kv.write;
      commit = Sss_kv.Kv.commit;
    }
  in
  ignore
    (Sss_workload.Driver.run sim ~nodes:2 ~total_keys:12
       ~local_keys:(fun n -> Replication.keys_at cl.Sss_kv.State.repl n)
       ~profile:(Sss_workload.Driver.paper_profile ~read_only_ratio:0.3)
       ~load:
         {
           Sss_workload.Driver.default_load with
           clients_per_node = 3;
           warmup = 0.005;
           duration = 0.03;
           seed = 5;
         }
       ~ops);
  History.events (Sss_kv.Kv.history cl)

let rebuild events =
  let h = History.create () in
  List.iter (fun (s : History.stamped) -> History.record h ~at:s.at s.event) events;
  h

let find_map_seq evs f = List.find_map f evs

let node_of evs txn =
  find_map_seq evs (fun (s : History.stamped) ->
      match s.event with
      | History.Begin { txn = t; node; _ } when Ids.equal_txn t txn -> Some node
      | _ -> None)

let begin_seq evs txn =
  find_map_seq evs (fun (s : History.stamped) ->
      match s.event with
      | History.Begin { txn = t; _ } when Ids.equal_txn t txn -> Some s.seq
      | _ -> None)

let commit_seq evs txn =
  find_map_seq evs (fun (s : History.stamped) ->
      match s.event with
      | History.Commit { txn = t; _ } when Ids.equal_txn t txn -> Some s.seq
      | _ -> None)

let committed evs txn = commit_seq evs txn <> None

(* A committed read of a non-genesis version whose writer committed — on
   the reader's own node — before the reader began: exactly the reads whose
   falsification a session-level external-consistency check must catch. *)
let find_anchored_read evs =
  find_map_seq evs (fun (s : History.stamped) ->
      match s.event with
      | History.Read { txn; key; writer }
        when (not (Ids.equal_txn writer Ids.genesis)) && committed evs txn -> (
          match (node_of evs txn, node_of evs writer, begin_seq evs txn, commit_seq evs writer)
          with
          | Some nr, Some nw, Some bs, Some cw when nr = nw && cw < bs ->
              Some (s.seq, txn, key, writer)
          | _ -> None)
      | _ -> None)

let test_mutation_stale_read () =
  let evs = real_history () in
  check_ok "unmutated history is clean" (Checker.external_consistency (rebuild evs));
  match find_anchored_read evs with
  | None -> Alcotest.fail "no anchored read in the real history (workload too small?)"
  | Some (seq, txn, key, _writer) ->
      (* the bug: a replica answers from a version the reader's own session
         has already seen superseded *)
      let mutated =
        List.map
          (fun (s : History.stamped) ->
            if s.seq = seq then
              { s with event = History.Read { txn; key; writer = Ids.genesis } }
            else s)
          evs
      in
      check_err "stale read rejected" (Checker.external_consistency (rebuild mutated))

let test_mutation_swapped_commit_order () =
  let evs = real_history () in
  check_ok "unmutated history is clean" (Checker.external_consistency (rebuild evs));
  match find_anchored_read evs with
  | None -> Alcotest.fail "no anchored read in the real history"
  | Some (_, reader, _, _writer) ->
      (* the bug: the coordinator acknowledges the reader's commit before
         the writer it depends on even began — recorded completion order
         contradicts the wr dependency *)
      let is_reader (s : History.stamped) =
        match s.event with
        | History.Begin { txn; _ } | History.Read { txn; _ } | History.Install { txn; _ }
        | History.Commit { txn; _ } | History.Abort { txn } ->
            Ids.equal_txn txn reader
      in
      let mine, rest = List.partition is_reader evs in
      let reordered =
        List.mapi
          (fun i (s : History.stamped) -> { s with at = float_of_int i })
          (mine @ rest)
      in
      check_err "inverted completion order rejected"
        (Checker.external_consistency (rebuild reordered))

let test_mutation_dropped_install () =
  let evs = real_history () in
  check_ok "unmutated history is clean" (Checker.no_lost_updates (rebuild evs));
  (* a committed RMW chain: R read W's version of a key and installed its
     own version of the same key *)
  let target =
    find_map_seq evs (fun (s : History.stamped) ->
        match s.event with
        | History.Read { txn = r; key; writer = w }
          when (not (Ids.equal_txn w Ids.genesis)) && committed evs r && committed evs w
               && List.exists
                    (fun (s2 : History.stamped) ->
                      match s2.event with
                      | History.Install { txn; key = k2 } -> Ids.equal_txn txn r && k2 = key
                      | _ -> false)
                    evs ->
            Some (key, w)
        | _ -> None)
  in
  match target with
  | None -> Alcotest.fail "no committed RMW chain in the real history"
  | Some (key, w) ->
      (* the bug: a replica loses the predecessor's install, so the chain's
         version order no longer contains the version the RMW observed *)
      let mutated =
        List.filter
          (fun (s : History.stamped) ->
            match s.event with
            | History.Install { txn; key = k } -> not (Ids.equal_txn txn w && k = key)
            | _ -> true)
          evs
      in
      check_err "dropped install rejected" (Checker.no_lost_updates (rebuild mutated))

(* the bug durability mode exists to prevent: a commit acknowledged to the
   client whose write never reached the store — the log record was lost in
   a crash but the ack escaped anyway *)
let test_mutation_torn_commit () =
  let evs = real_history () in
  check_ok "unmutated history has no torn commits" (Checker.no_torn_commits (rebuild evs));
  let target =
    find_map_seq evs (fun (s : History.stamped) ->
        match s.event with
        | History.Commit { txn; ws = key :: _ } -> Some (txn, key)
        | _ -> None)
  in
  match target with
  | None -> Alcotest.fail "no committed update in the real history"
  | Some (txn, key) ->
      let mutated =
        List.filter
          (fun (s : History.stamped) ->
            match s.event with
            | History.Install { txn = t; key = k } -> not (Ids.equal_txn t txn && k = key)
            | _ -> true)
          evs
      in
      check_err "torn commit rejected" (Checker.no_torn_commits (rebuild mutated))

(* recovered histories may re-install a version whose apply predated the
   crash (redo replay of a Decide redelivery): the duplicate must not
   corrupt the version order *)
let test_duplicate_install_accepted () =
  let evs = real_history () in
  let first_install =
    find_map_seq evs (fun (s : History.stamped) ->
        match s.event with History.Install _ -> Some s | _ -> None)
  in
  match first_install with
  | None -> Alcotest.fail "no install in the real history"
  | Some dup ->
      let duplicated = evs @ [ { dup with seq = List.length evs } ] in
      check_ok "duplicate install still clean" (Checker.external_consistency (rebuild duplicated));
      check_ok "duplicate install keeps updates" (Checker.no_lost_updates (rebuild duplicated));
      check_ok "duplicate install not torn" (Checker.no_torn_commits (rebuild duplicated))

(* ---------- GC safety ----------

   Online version GC must be invisible: it may only drop versions no live
   (or future) read-only snapshot can still select.  The first test mutates
   the STORE rather than the history — an over-eager truncate mid-run — and
   shows the checker catches the resulting anomalies, i.e. the safety net
   under which the real watermark GC runs is live.  The second shows the
   real GC is indeed invisible: the full committed history is byte-identical
   with GC on and off. *)

let gc_run ?(sabotage = false) ~gc ~seed () =
  let sim = Sss_sim.Sim.create () in
  let config =
    {
      Sss_kv.Config.default with
      nodes = 3;
      replication_degree = 1;
      total_keys = 18;
      seed;
      gc;
    }
  in
  let cl = Sss_kv.Kv.create sim config in
  if sabotage then
    (* the modelled bug: a GC that ignores the snapshot low-watermark and
       slashes every chain to its newest version, repeatedly, mid-run *)
    Sss_sim.Sim.spawn sim (fun () ->
        for _ = 1 to 30 do
          Sss_sim.Sim.sleep sim 0.002;
          Array.iter
            (fun (n : Sss_kv.State.node) ->
              List.iter
                (fun k -> Mvstore.truncate n.Sss_kv.State.store k ~keep:1)
                (Mvstore.keys n.Sss_kv.State.store))
            cl.Sss_kv.State.nodes
        done);
  let ops =
    {
      Sss_workload.Driver.begin_txn =
        (fun ~node ~read_only -> Sss_kv.Kv.begin_txn cl ~node ~read_only);
      read = Sss_kv.Kv.read;
      write = Sss_kv.Kv.write;
      commit = Sss_kv.Kv.commit;
    }
  in
  ignore
    (Sss_workload.Driver.run sim ~nodes:3 ~total_keys:18
       ~local_keys:(fun n -> Replication.keys_at cl.Sss_kv.State.repl n)
       ~profile:(Sss_workload.Driver.paper_profile ~read_only_ratio:0.5)
       ~load:
         {
           Sss_workload.Driver.default_load with
           clients_per_node = 4;
           warmup = 0.005;
           duration = 0.08;
           seed;
         }
       ~ops);
  cl

let checker_verdict cl =
  let h = Sss_kv.Kv.history cl in
  match
    ( Checker.external_consistency h,
      Checker.serializability h,
      Checker.no_lost_updates h )
  with
  | Ok (), Ok (), Ok () -> Ok ()
  | Error m, _, _ | _, Error m, _ | _, _, Error m -> Error m

let test_over_eager_truncate_caught () =
  (* same run without the sabotage fiber is checker-clean... *)
  check_ok "un-sabotaged run is clean" (checker_verdict (gc_run ~gc:false ~seed:21 ()));
  (* ...and with it, paused read-only transactions are served versions
     newer than their snapshot bound, which the checker flags *)
  check_err "over-eager truncate caught"
    (checker_verdict (gc_run ~sabotage:true ~gc:false ~seed:21 ()))

(* A printable fingerprint of the full event history: every begin, read
   (with the version's writer), install, commit and abort, in recorded
   order with sequence numbers and timestamps.  Byte-equality of two
   fingerprints is byte-equality of the two executions. *)
let history_fingerprint cl =
  let b = Buffer.create 65536 in
  List.iter
    (fun (s : History.stamped) ->
      let e =
        match s.event with
        | History.Begin { txn; ro; node } ->
            Printf.sprintf "B %s %b %d" (Ids.txn_to_string txn) ro node
        | History.Read { txn; key; writer } ->
            Printf.sprintf "R %s %d %s" (Ids.txn_to_string txn) key
              (Ids.txn_to_string writer)
        | History.Install { txn; key } ->
            Printf.sprintf "I %s %d" (Ids.txn_to_string txn) key
        | History.Commit { txn; ws } ->
            Printf.sprintf "C %s [%s]" (Ids.txn_to_string txn)
              (String.concat "," (List.map string_of_int ws))
        | History.Abort { txn } -> Printf.sprintf "A %s" (Ids.txn_to_string txn)
      in
      Buffer.add_string b (Printf.sprintf "%d %.9f %s\n" s.seq s.at e))
    (History.events (Sss_kv.Kv.history cl));
  Buffer.contents b

let test_gc_does_not_change_history () =
  let off = gc_run ~gc:false ~seed:23 () in
  let on = gc_run ~gc:true ~seed:23 () in
  (* the GC-on run must have actually collected something, or this test
     proves nothing *)
  let _, dropped_versions, _ = Sss_kv.Kv.gc_stats on in
  Alcotest.(check bool)
    (Printf.sprintf "GC dropped versions (%d)" dropped_versions)
    true (dropped_versions > 0);
  Alcotest.(check bool)
    (Printf.sprintf "GC-on retains fewer versions (%d < %d)"
       (Sss_kv.Kv.version_count on) (Sss_kv.Kv.version_count off))
    true
    (Sss_kv.Kv.version_count on < Sss_kv.Kv.version_count off);
  check_ok "GC-on run is checker-clean" (checker_verdict on);
  check_ok "GC-on run is quiescent" (Sss_kv.Kv.quiescent on);
  (* and the committed history — every event, timestamp and version read —
     is byte-identical: the GC was invisible *)
  Alcotest.(check string) "histories byte-identical" (history_fingerprint off)
    (history_fingerprint on)

let () =
  Alcotest.run "consistency"
    [
      ( "checker",
        [
          Alcotest.test_case "serial passes" `Quick test_serial_history_passes;
          Alcotest.test_case "stale read after completion" `Quick test_stale_read_after_completion;
          Alcotest.test_case "write skew" `Quick test_write_skew_detected;
          Alcotest.test_case "lost update" `Quick test_lost_update_detected;
          Alcotest.test_case "long fork" `Quick test_long_fork_detected;
          Alcotest.test_case "aborted excluded" `Quick test_aborted_txns_excluded;
          Alcotest.test_case "ro abort flagged" `Quick test_read_only_abort_flagged;
          Alcotest.test_case "uncommitted installer" `Quick test_uncommitted_installer_constrains;
          Alcotest.test_case "edge kinds" `Quick test_dependency_edge_kinds;
          Alcotest.test_case "disabled recorder" `Quick test_disabled_recorder;
          Alcotest.test_case "to_dot" `Quick test_to_dot_renders_edges;
          Alcotest.test_case "strict vs session" `Quick test_strict_vs_session_semantics;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "stale read in a real history" `Quick test_mutation_stale_read;
          Alcotest.test_case "swapped commit order in a real history" `Quick
            test_mutation_swapped_commit_order;
          Alcotest.test_case "dropped install in a real history" `Quick
            test_mutation_dropped_install;
          Alcotest.test_case "torn commit in a real history" `Quick test_mutation_torn_commit;
          Alcotest.test_case "duplicate install accepted" `Quick
            test_duplicate_install_accepted;
        ] );
      ( "gc-safety",
        [
          Alcotest.test_case "over-eager truncate caught" `Quick
            test_over_eager_truncate_caught;
          Alcotest.test_case "GC never changes committed history" `Quick
            test_gc_does_not_change_history;
        ] );
    ]
