(* Tests for the storage substrate: vector clocks, version chains,
   snapshot-queues, CommitQ, NLog, locks, and replica placement. *)

open Sss_data

let tx node local : Ids.txn = { node; local }

let vc l = Vclock.of_array (Array.of_list l)

(* ---------- Vclock ---------- *)

let test_vclock_basics () =
  let z = Vclock.zero 3 in
  Alcotest.(check int) "size" 3 (Vclock.size z);
  Alcotest.(check int) "zero entry" 0 (Vclock.get z 1);
  let a = Vclock.set z 1 5 in
  Alcotest.(check int) "set" 5 (Vclock.get a 1);
  Alcotest.(check int) "original untouched" 0 (Vclock.get z 1);
  let b = Vclock.bump a 1 in
  Alcotest.(check int) "bump" 6 (Vclock.get b 1)

let test_vclock_order () =
  let a = vc [ 1; 2; 3 ] and b = vc [ 2; 2; 4 ] and c = vc [ 0; 5; 0 ] in
  Alcotest.(check bool) "a <= b" true (Vclock.leq a b);
  Alcotest.(check bool) "a < b" true (Vclock.lt a b);
  Alcotest.(check bool) "b </= a" false (Vclock.leq b a);
  Alcotest.(check bool) "a || c concurrent" true (Vclock.concurrent a c);
  Alcotest.(check bool) "a <= a" true (Vclock.leq a a);
  Alcotest.(check bool) "not a < a" false (Vclock.lt a a)

let test_vclock_max () =
  let m = Vclock.max (vc [ 1; 5; 3 ]) (vc [ 4; 2; 3 ]) in
  Alcotest.(check (list int)) "entrywise max" [ 4; 5; 3 ] (Array.to_list (Vclock.to_array m))

let test_vclock_to_array_copies () =
  let a = vc [ 1; 2 ] in
  let arr = Vclock.to_array a in
  arr.(0) <- 99;
  Alcotest.(check int) "immutable" 1 (Vclock.get a 0)

let vclock_lattice_laws =
  let vec = QCheck.(list_of_size (Gen.return 4) (int_bound 100)) in
  QCheck.Test.make ~name:"vclock max is least upper bound" ~count:300
    (QCheck.pair vec vec)
    (fun (xs, ys) ->
      let a = vc xs and b = vc ys in
      let m = Vclock.max a b in
      Vclock.leq a m && Vclock.leq b m
      && Vclock.equal (Vclock.max a b) (Vclock.max b a)
      && Vclock.equal (Vclock.max a a) a)

(* ---------- Ids ---------- *)

let test_ids_gen () =
  let g = Ids.Gen.create 3 in
  let a = Ids.Gen.next g and b = Ids.Gen.next g in
  Alcotest.(check bool) "distinct" false (Ids.equal_txn a b);
  Alcotest.(check int) "node stamped" 3 a.Ids.node;
  Alcotest.(check string) "printing" "T<3.1>" (Ids.txn_to_string a);
  Alcotest.(check bool) "ordered" true (Ids.compare_txn a b < 0)

(* ---------- Mvstore ---------- *)

let test_mvstore_genesis () =
  let s = Mvstore.create ~nodes:2 in
  Mvstore.init_key s 7 ~value:"init";
  let v = Mvstore.last s 7 in
  Alcotest.(check string) "genesis value" "init" (Mvstore.slot_value s v);
  Alcotest.(check bool) "genesis writer" true
    (Ids.equal_txn (Mvstore.slot_writer s v) Ids.genesis);
  Mvstore.init_key s 7 ~value:"other";
  Alcotest.(check string) "init idempotent" "init"
    (Mvstore.slot_value s (Mvstore.last s 7));
  (* the boot default is derived, not stored *)
  let d = Mvstore.create ~nodes:2 in
  Mvstore.init_key d 7 ~value:"init:7";
  Alcotest.(check string) "derived genesis" "init:7"
    (Mvstore.slot_value d (Mvstore.last d 7));
  Alcotest.(check bool) "derived genesis writer" true
    (Mvstore.slot_writer_is d (Mvstore.last d 7) Ids.genesis)

let test_mvstore_install_order () =
  let s = Mvstore.create ~nodes:2 in
  Mvstore.init_key s 1 ~value:"v0";
  Mvstore.install s 1 ~value:"v1" ~vc:(vc [ 1; 0 ]) ~writer:(tx 0 1);
  Mvstore.install s 1 ~value:"v2" ~vc:(vc [ 2; 0 ]) ~writer:(tx 0 2);
  Alcotest.(check string) "last is newest" "v2" (Mvstore.slot_value s (Mvstore.last s 1));
  Alcotest.(check int) "chain length" 3 (List.length (Mvstore.chain s 1))

let test_mvstore_select () =
  let s = Mvstore.create ~nodes:2 in
  Mvstore.init_key s 1 ~value:"v0";
  Mvstore.install s 1 ~value:"v1" ~vc:(vc [ 1; 0 ]) ~writer:(tx 0 1);
  Mvstore.install s 1 ~value:"v2" ~vc:(vc [ 2; 0 ]) ~writer:(tx 0 2);
  let bound = vc [ 1; 5 ] in
  let chosen = Mvstore.select s 1 ~skip:(fun cvc -> not (Vclock.leq cvc bound)) in
  Alcotest.(check string) "bounded select" "v1" (Mvstore.slot_value s chosen);
  (* Everything skipped: falls back to oldest. *)
  let oldest = Mvstore.select s 1 ~skip:(fun _ -> true) in
  Alcotest.(check string) "fallback to oldest" "v0" (Mvstore.slot_value s oldest)

let test_mvstore_truncate () =
  let s = Mvstore.create ~nodes:1 in
  Mvstore.init_key s 1 ~value:"v0";
  for i = 1 to 10 do
    Mvstore.install s 1 ~value:(Printf.sprintf "v%d" i) ~vc:(vc [ i ]) ~writer:(tx 0 i)
  done;
  Mvstore.truncate s 1 ~keep:3;
  Alcotest.(check int) "kept 3" 3 (List.length (Mvstore.chain s 1));
  Alcotest.(check string) "newest survives" "v10" (Mvstore.slot_value s (Mvstore.last s 1));
  Mvstore.truncate s 1 ~keep:0;
  Alcotest.(check int) "never below 1" 1 (List.length (Mvstore.chain s 1))

(* A 200k-version tail freed in one truncate: the arena walks the chain
   iteratively, so this must not blow the stack (the pre-arena list store
   used a non-tail-recursive take here). *)
let test_mvstore_long_chain_truncate () =
  let s = Mvstore.create ~nodes:1 in
  Mvstore.init_key s 0 ~value:"init:0";
  let n = 200_000 in
  for i = 1 to n do
    Mvstore.install s 0 ~value:"x" ~vc:(vc [ i ]) ~writer:(tx 0 i)
  done;
  Alcotest.(check int) "all installed" (n + 1) (Mvstore.version_count s);
  Mvstore.truncate s 0 ~keep:2;
  Alcotest.(check int) "kept 2" 2 (Mvstore.version_count s);
  Alcotest.(check string) "newest survives" "x" (Mvstore.slot_value s (Mvstore.last s 0));
  Mvstore.truncate s 0 ~keep:1;
  Alcotest.(check int) "kept 1" 1 (Mvstore.version_count s)

(* Clock-arena recycling: drive identical install/GC cycles and require the
   resident footprint and the free-list occupancy to sit exactly where they
   were once steady state is reached.  A refcount leak (a cell freed never
   or twice) shows up as arena growth or free-list drift. *)
let test_mvstore_arena_recycling () =
  let nodes = 4 and nk = 8 in
  let s = Mvstore.create ~nodes in
  for k = 0 to nk - 1 do
    Mvstore.init_key s k ~value:("init:" ^ string_of_int k)
  done;
  let cycle c =
    for j = 0 to 2 do
      let t = (3 * c) + j in
      (* one physical clock per commit, shared across the whole write set *)
      let cvc = vc [ t; 0; 0; 0 ] in
      for k = 0 to nk - 1 do
        Mvstore.install s k ~value:(Printf.sprintf "v%06d" t) ~vc:cvc
          ~writer:(tx (t mod nodes) t)
      done
    done;
    (* the middle install is covered: every chain shrinks back to 2 *)
    let w = vc [ (3 * c) + 1; 0; 0; 0 ] in
    ignore (Mvstore.sweep_covered s ~watermark:w ~budget:(Mvstore.chains s))
  in
  for c = 1 to 8 do
    cycle c
  done;
  let m0 = Mvstore.mem_words s in
  for c = 9 to 60 do
    cycle c
  done;
  let m1 = Mvstore.mem_words s in
  Alcotest.(check int) "chains hold two versions" (2 * nk) m1.Mvstore.versions;
  Alcotest.(check int) "footprint flat across cycles" (Mvstore.mem_total m0)
    (Mvstore.mem_total m1);
  Alcotest.(check int) "free lists back to baseline" m0.Mvstore.clock_free_words
    m1.Mvstore.clock_free_words;
  Alcotest.(check int) "slot free list back to baseline" m0.Mvstore.free_slots
    m1.Mvstore.free_slots

(* Model-based battery: random op interleavings replayed against both the
   arena store and a boxed list-of-records reference, comparing every chain
   (values, clocks, writers) after each step.  This pins the whole decode
   path — delta chains, interned zeros, implicit genesis, slot reuse, the
   sweep cursor — to the specification the pre-arena store implemented
   directly. *)

type mver = { mvalue : string; mvc : int array; mwriter : Ids.txn }

type mop =
  | MInstall of int * int array * (int * int)
  | MInstall2 of int * int * int array * (int * int)  (* shared-clock write set *)
  | MSelect of int * int array
  | MTruncate of int * int
  | MCovered of int * int array
  | MSweep of int array * int
  | MRestore of int * (int * int array * (int * int)) list * int
  | MRoundtrip

let mop_to_string op =
  let arr a = "[" ^ String.concat ";" (Array.to_list (Array.map string_of_int a)) ^ "]" in
  match op with
  | MInstall (k, c, (w, l)) -> Printf.sprintf "install k%d %s T<%d.%d>" k (arr c) w l
  | MInstall2 (k1, k2, c, (w, l)) ->
      Printf.sprintf "install2 k%d k%d %s T<%d.%d>" k1 k2 (arr c) w l
  | MSelect (k, b) -> Printf.sprintf "select k%d %s" k (arr b)
  | MTruncate (k, n) -> Printf.sprintf "truncate k%d keep:%d" k n
  | MCovered (k, w) -> Printf.sprintf "covered k%d %s" k (arr w)
  | MSweep (w, b) -> Printf.sprintf "sweep %s budget:%d" (arr w) b
  | MRestore (k, vs, tail) ->
      Printf.sprintf "restore k%d %d-versions tail:%d" k (List.length vs) tail
  | MRoundtrip -> "roundtrip"

let mvstore_matches_model =
  let nodes = 3 and nkeys = 4 in
  let key i = (2 * i) + 1 in
  let zeros () = Array.make nodes 0 in
  let arr_leq a b =
    let ok = ref true in
    Array.iteri (fun i x -> if x > b.(i) then ok := false) a;
    !ok
  in
  let gen =
    let open QCheck.Gen in
    let clock = array_size (return nodes) (int_bound 6) in
    let writer = pair (int_bound (nodes - 1)) (int_range 1 99) in
    let k = int_bound (nkeys - 1) in
    let ver = triple (int_bound 99) clock writer in
    let op =
      frequency
        [
          (6, map3 (fun k c w -> MInstall (k, c, w)) k clock writer);
          (2, map3 (fun (k1, k2) c w -> MInstall2 (k1, k2, c, w)) (pair k k) clock writer);
          (4, map2 (fun k b -> MSelect (k, b)) k clock);
          (2, map2 (fun k n -> MTruncate (k, n)) k (int_bound 4));
          (2, map2 (fun k w -> MCovered (k, w)) k clock);
          (2, map2 (fun w b -> MSweep (w, b)) clock (int_range 1 6));
          (1, map3 (fun k vs tail -> MRestore (k, vs, tail)) k (list_size (int_bound 4) ver) (int_bound 2));
          (1, return MRoundtrip);
        ]
    in
    list_size (int_bound 50) op
  in
  let print ops = String.concat "; " (List.map mop_to_string ops) in
  let run ops =
    let s = Mvstore.create ~nodes in
    let model = Array.make nkeys [] in
    (* creation order fixes the handle order the sweep cursor walks *)
    for i = 0 to nkeys - 1 do
      let v = if i = 0 then "boot" else "init:" ^ string_of_int (key i) in
      Mvstore.init_key s (key i) ~value:v;
      model.(i) <- [ { mvalue = v; mvc = zeros (); mwriter = Ids.genesis } ]
    done;
    let m_hi = ref 0 and m_pos = ref 0 in
    let m_covered i w =
      let rec walk kept = function
        | [] -> 0 (* genesis gone, nothing covered: untouched *)
        | v :: older ->
            if arr_leq v.mvc w then begin
              model.(i) <- List.rev_append kept [ v ];
              List.length older
            end
            else walk (v :: kept) older
      in
      walk [] model.(i)
    in
    let m_sweep w budget =
      let dropped = ref 0 in
      for _ = 1 to budget do
        if !m_pos >= !m_hi then begin
          m_hi := nkeys;
          m_pos := 0
        end;
        dropped := !dropped + m_covered (!m_hi - 1 - !m_pos) w;
        incr m_pos
      done;
      !dropped
    in
    let agree () =
      let ok = ref true in
      for i = 0 to nkeys - 1 do
        let mch = model.(i) and ach = Mvstore.chain s (key i) in
        if List.length mch <> List.length ach then ok := false
        else
          List.iter2
            (fun m a ->
              if
                not
                  (String.equal m.mvalue a.Mvstore.value
                  && m.mvc = Vclock.to_array a.Mvstore.vc
                  && Ids.equal_txn m.mwriter a.Mvstore.writer)
              then ok := false)
            mch ach
      done;
      let total = Array.fold_left (fun acc l -> acc + List.length l) 0 model in
      !ok
      && Mvstore.version_count s = total
      && (Mvstore.mem_words s).Mvstore.versions = total
    in
    let step op =
      match op with
      | MInstall (i, c, (w, l)) ->
          let value = Printf.sprintf "w%d.%d" w l in
          Mvstore.install s (key i) ~value ~vc:(Vclock.of_array c)
            ~writer:(tx w l);
          model.(i) <- { mvalue = value; mvc = Array.copy c; mwriter = tx w l } :: model.(i);
          true
      | MInstall2 (i1, i2, c, (w, l)) ->
          (* one commit touching two keys: the same physical clock is
             installed twice, exercising the refcount-shared memo cell *)
          let cvc = Vclock.of_array c in
          let value = Printf.sprintf "w%d.%d" w l in
          Mvstore.install s (key i1) ~value ~vc:cvc ~writer:(tx w l);
          Mvstore.install s (key i2) ~value ~vc:cvc ~writer:(tx w l);
          model.(i1) <- { mvalue = value; mvc = Array.copy c; mwriter = tx w l } :: model.(i1);
          model.(i2) <- { mvalue = value; mvc = Array.copy c; mwriter = tx w l } :: model.(i2);
          true
      | MSelect (i, b) ->
          let bound = Vclock.of_array b in
          let got =
            Mvstore.select s (key i) ~skip:(fun cvc -> not (Vclock.leq cvc bound))
          in
          let rec walk = function
            | [] -> assert false
            | [ oldest ] -> oldest
            | v :: rest -> if not (arr_leq v.mvc b) then walk rest else v
          in
          let want = walk model.(i) in
          String.equal want.mvalue (Mvstore.slot_value s got)
          && Mvstore.slot_writer_is s got want.mwriter
      | MTruncate (i, n) ->
          Mvstore.truncate s (key i) ~keep:n;
          let keep = Stdlib.max n 1 in
          let rec take n = function
            | [] -> []
            | v :: rest -> if n = 0 then [] else v :: take (n - 1) rest
          in
          model.(i) <- take keep model.(i);
          true
      | MCovered (i, w) ->
          let got = Mvstore.truncate_covered s (key i) ~watermark:(Vclock.of_array w) in
          got = m_covered i w
      | MSweep (w, b) ->
          let got = Mvstore.sweep_covered s ~watermark:(Vclock.of_array w) ~budget:b in
          got = m_sweep w b
      | MRestore (i, vs, tail) ->
          let expl =
            List.map
              (fun (v, c, (w, l)) ->
                { mvalue = "r" ^ string_of_int v; mvc = Array.copy c; mwriter = tx w l })
              vs
          in
          let g =
            match tail with
            | 0 -> []
            | 1 ->
                [ { mvalue = "init:" ^ string_of_int (key i); mvc = zeros (); mwriter = Ids.genesis } ]
            | _ -> [ { mvalue = "boot"; mvc = zeros (); mwriter = Ids.genesis } ]
          in
          let full = expl @ g in
          Mvstore.restore_chain s (key i)
            (List.map
               (fun m -> { Mvstore.value = m.mvalue; vc = Vclock.of_array m.mvc; writer = m.mwriter })
               full);
          if full <> [] then model.(i) <- full;
          true
      | MRoundtrip ->
          let im = Mvstore.image_of s in
          Mvstore.restore s im;
          Mvstore.image_bytes im > 0
    in
    List.for_all (fun op -> step op && agree ()) ops
  in
  QCheck.Test.make ~name:"mvstore agrees with list model" ~count:150
    (QCheck.make gen ~print) run

(* ---------- Squeue ---------- *)

let test_squeue_ordering () =
  let q = Squeue.create () in
  Squeue.insert_read q ~txn:(tx 1 1) ~sid:7;
  Squeue.insert_read q ~txn:(tx 2 1) ~sid:3;
  Squeue.insert_write q ~txn:(tx 0 1) ~sid:8;
  Alcotest.(check int) "length" 3 (Squeue.length q);
  Alcotest.(check (option int)) "min read sid" (Some 3) (Squeue.min_read_sid q);
  let reader_sids = List.map (fun e -> e.Squeue.sid) (Squeue.readers q) in
  Alcotest.(check (list int)) "readers sorted" [ 3; 7 ] reader_sids;
  Alcotest.(check bool) "read below 8" true (Squeue.exists_read_below q ~sid:8);
  Alcotest.(check bool) "no read below 3" false (Squeue.exists_read_below q ~sid:3)

let test_squeue_idempotent_insert () =
  let q = Squeue.create () in
  Squeue.insert_read q ~txn:(tx 1 1) ~sid:5;
  Squeue.insert_read q ~txn:(tx 1 1) ~sid:5;
  Alcotest.(check int) "single entry" 1 (Squeue.length q);
  (* Same transaction with a different sid is a second entry (repeated read
     with a fresher snapshot). *)
  Squeue.insert_read q ~txn:(tx 1 1) ~sid:6;
  Alcotest.(check int) "distinct sid re-entry" 2 (Squeue.length q)

let test_squeue_remove () =
  let q = Squeue.create () in
  Squeue.insert_read q ~txn:(tx 1 1) ~sid:5;
  Squeue.insert_read q ~txn:(tx 1 1) ~sid:6;
  Squeue.insert_write q ~txn:(tx 2 1) ~sid:9;
  Alcotest.(check bool) "removed" true (Squeue.remove q (tx 1 1));
  Alcotest.(check bool) "all entries gone" false (Squeue.mem q (tx 1 1));
  Alcotest.(check bool) "writer stays" true (Squeue.mem q (tx 2 1));
  Alcotest.(check bool) "second remove is false" false (Squeue.remove q (tx 1 1));
  Alcotest.(check bool) "not empty yet" false (Squeue.is_empty q);
  ignore (Squeue.remove q (tx 2 1));
  Alcotest.(check bool) "empty" true (Squeue.is_empty q)

let squeue_sorted_property =
  QCheck.Test.make ~name:"squeue readers always sorted by sid" ~count:200
    QCheck.(list (pair (int_bound 5) (int_bound 50)))
    (fun ops ->
      let q = Squeue.create () in
      List.iter (fun (who, sid) -> Squeue.insert_read q ~txn:(tx who 1) ~sid) ops;
      let sids = List.map (fun e -> e.Squeue.sid) (Squeue.readers q) in
      List.sort Int.compare sids = sids)

(* ---------- Commitq ---------- *)

let test_commitq_order_and_head () =
  let q = Commitq.create ~node:0 in
  Commitq.put q ~txn:(tx 0 1) ~vc:(vc [ 5; 0 ]);
  Commitq.put q ~txn:(tx 0 2) ~vc:(vc [ 3; 0 ]);
  (match Commitq.head q with
  | Some e ->
      Alcotest.(check bool) "lowest vc[i] first" true (Ids.equal_txn e.Commitq.txn (tx 0 2))
  | None -> Alcotest.fail "expected head");
  (* Ready-ing the head with a larger final clock can reorder it. *)
  Commitq.update q ~txn:(tx 0 2) ~vc:(vc [ 9; 0 ]);
  (match Commitq.head q with
  | Some e ->
      Alcotest.(check bool) "reordered" true (Ids.equal_txn e.Commitq.txn (tx 0 1));
      Alcotest.(check bool) "still pending" true (e.Commitq.status = Commitq.Pending)
  | None -> Alcotest.fail "expected head");
  Commitq.remove q (tx 0 1);
  (match Commitq.head q with
  | Some e ->
      Alcotest.(check bool) "ready head" true (e.Commitq.status = Commitq.Ready)
  | None -> Alcotest.fail "expected head");
  Commitq.remove q (tx 0 2);
  Alcotest.(check int) "drained" 0 (Commitq.length q)

let test_commitq_duplicate_put_rejected () =
  let q = Commitq.create ~node:0 in
  Commitq.put q ~txn:(tx 0 1) ~vc:(vc [ 1 ]);
  Alcotest.check_raises "duplicate put"
    (Invalid_argument "Commitq.put: duplicate transaction") (fun () ->
      Commitq.put q ~txn:(tx 0 1) ~vc:(vc [ 2 ]))

let test_commitq_update_missing_is_noop () =
  let q = Commitq.create ~node:0 in
  Commitq.update q ~txn:(tx 0 9) ~vc:(vc [ 1 ]);
  Alcotest.(check int) "still empty" 0 (Commitq.length q)

(* ---------- Nlog ---------- *)

let test_nlog_most_recent () =
  let l = Nlog.create ~nodes:2 ~node:0 in
  Alcotest.(check int) "genesis local" 0 (Nlog.most_recent_local l);
  Nlog.add l ~txn:(tx 0 1) ~vc:(vc [ 1; 0 ]) ~ws:[ 1 ] ~at:0.1;
  Nlog.add l ~txn:(tx 0 2) ~vc:(vc [ 2; 3 ]) ~ws:[ 2 ] ~at:0.2;
  Alcotest.(check int) "local entry" 2 (Nlog.most_recent_local l);
  Alcotest.(check (list int)) "most recent vc" [ 2; 3 ]
    (Array.to_list (Vclock.to_array (Nlog.most_recent_vc l)))

let test_nlog_visible_max_unconstrained () =
  let l = Nlog.create ~nodes:2 ~node:0 in
  Nlog.add l ~txn:(tx 0 1) ~vc:(vc [ 1; 4 ]) ~ws:[] ~at:0.0;
  Nlog.add l ~txn:(tx 0 2) ~vc:(vc [ 2; 1 ]) ~ws:[] ~at:0.0;
  let m =
    Nlog.visible_max l ~has_read:[| false; false |] ~bound:(vc [ 0; 0 ]) ~cutoff:max_int
  in
  Alcotest.(check (list int)) "max over all entries" [ 2; 4 ]
    (Array.to_list (Vclock.to_array m))

let test_nlog_visible_max_bounded () =
  let l = Nlog.create ~nodes:2 ~node:0 in
  Nlog.add l ~txn:(tx 0 1) ~vc:(vc [ 1; 1 ]) ~ws:[] ~at:0.0;
  Nlog.add l ~txn:(tx 0 2) ~vc:(vc [ 2; 9 ]) ~ws:[] ~at:0.0;
  (* Node 1 was already read with bound 5: the second entry (vc[1]=9) is not
     admissible. *)
  let m =
    Nlog.visible_max l ~has_read:[| false; true |] ~bound:(vc [ 0; 5 ]) ~cutoff:max_int
  in
  Alcotest.(check (list int)) "bounded" [ 1; 1 ] (Array.to_list (Vclock.to_array m))

let test_nlog_visible_max_cutoff () =
  (* The cutoff makes the local snapshot a prefix of the apply order: the
     entry at local clock 2 and everything after it are invisible. *)
  let l = Nlog.create ~nodes:2 ~node:0 in
  Nlog.add l ~txn:(tx 0 1) ~vc:(vc [ 1; 1 ]) ~ws:[] ~at:0.0;
  Nlog.add l ~txn:(tx 0 2) ~vc:(vc [ 2; 2 ]) ~ws:[] ~at:0.0;
  Nlog.add l ~txn:(tx 0 3) ~vc:(vc [ 3; 1 ]) ~ws:[] ~at:0.0;
  let m =
    Nlog.visible_max l ~has_read:[| false; false |] ~bound:(vc [ 0; 0 ]) ~cutoff:2
  in
  Alcotest.(check (list int)) "prefix below cutoff" [ 1; 1 ]
    (Array.to_list (Vclock.to_array m))

let test_nlog_prune () =
  let l = Nlog.create ~nodes:1 ~node:0 in
  for i = 1 to 10 do
    Nlog.add l ~txn:(tx 0 i) ~vc:(vc [ i ]) ~ws:[] ~at:(float_of_int i)
  done;
  Alcotest.(check int) "11 entries (incl genesis)" 11 (Nlog.size l);
  Nlog.prune l ~before:8.0;
  (* Keeps entries at >= 8.0 plus one floor entry. *)
  Alcotest.(check int) "pruned" 4 (Nlog.size l);
  Alcotest.(check int) "most recent preserved" 10 (Nlog.most_recent_local l);
  Alcotest.(check int) "committed max survives pruning" 10
    (Vclock.get (Nlog.committed_max l) 0)

(* ---------- Locks ---------- *)

let with_sim f =
  let sim = Sss_sim.Sim.create () in
  let result = ref None in
  Sss_sim.Sim.spawn sim (fun () -> result := Some (f sim));
  Sss_sim.Sim.run sim;
  match !result with Some r -> r | None -> Alcotest.fail "fiber did not finish"

let test_locks_shared_compatible () =
  with_sim (fun sim ->
      let t = Locks.create sim in
      Alcotest.(check bool) "t1 shared" true (Locks.acquire t (tx 1 1) Locks.Shared 5 ~timeout:0.1);
      Alcotest.(check bool) "t2 shared" true (Locks.acquire t (tx 2 1) Locks.Shared 5 ~timeout:0.1);
      Alcotest.(check bool) "exclusive blocked" false
        (Locks.acquire t (tx 3 1) Locks.Exclusive 5 ~timeout:0.001);
      Locks.release_txn t (tx 1 1);
      Locks.release_txn t (tx 2 1);
      Alcotest.(check bool) "exclusive after release" true
        (Locks.acquire t (tx 3 1) Locks.Exclusive 5 ~timeout:0.1))

let test_locks_exclusive_blocks_shared () =
  with_sim (fun sim ->
      let t = Locks.create sim in
      Alcotest.(check bool) "ex" true (Locks.acquire t (tx 1 1) Locks.Exclusive 5 ~timeout:0.1);
      Alcotest.(check bool) "shared blocked" false
        (Locks.acquire t (tx 2 1) Locks.Shared 5 ~timeout:0.001);
      (* Re-entrant: the owner may take the shared lock it implies. *)
      Alcotest.(check bool) "owner reenters" true
        (Locks.acquire t (tx 1 1) Locks.Shared 5 ~timeout:0.001))

let test_locks_waiter_wakes () =
  let sim = Sss_sim.Sim.create () in
  let t = Locks.create sim in
  let acquired_at = ref (-1.0) in
  Sss_sim.Sim.spawn sim (fun () ->
      ignore (Locks.acquire t (tx 1 1) Locks.Exclusive 5 ~timeout:1.0);
      Sss_sim.Sim.sleep sim 0.5;
      Locks.release_txn t (tx 1 1));
  Sss_sim.Sim.spawn sim (fun () ->
      if Locks.acquire t (tx 2 1) Locks.Exclusive 5 ~timeout:1.0 then
        acquired_at := Sss_sim.Sim.now sim);
  Sss_sim.Sim.run sim;
  Alcotest.(check (float 1e-9)) "woken at release" 0.5 !acquired_at

let test_locks_acquire_all_rollback () =
  with_sim (fun sim ->
      let t = Locks.create sim in
      Alcotest.(check bool) "blocker" true
        (Locks.acquire t (tx 9 1) Locks.Exclusive 2 ~timeout:0.1);
      let ok =
        Locks.acquire_all t (tx 1 1) ~exclusive:[ 1; 2; 3 ] ~shared:[] ~timeout:0.001
      in
      Alcotest.(check bool) "failed" false ok;
      Alcotest.(check bool) "key 1 rolled back" true (Locks.is_free t 1);
      Alcotest.(check bool) "key 3 untouched" true (Locks.is_free t 3);
      Alcotest.(check (list int)) "nothing held" [] (Locks.locked_keys t (tx 1 1)))

let test_locks_acquire_all_read_write_overlap () =
  with_sim (fun sim ->
      let t = Locks.create sim in
      (* Update transactions read the keys they write: the shared acquisition
         must succeed on top of the exclusive one. *)
      let ok =
        Locks.acquire_all t (tx 1 1) ~exclusive:[ 4; 5 ] ~shared:[ 4; 5; 6 ] ~timeout:0.01
      in
      Alcotest.(check bool) "granted" true ok;
      Alcotest.(check bool) "exclusive" true (Locks.holds_exclusive t (tx 1 1) 4);
      Alcotest.(check bool) "shared extra" true (Locks.holds_shared t (tx 1 1) 6))

(* ---------- Vcodec ---------- *)

let vcodec_roundtrip =
  let vec = QCheck.(list_of_size (Gen.return 6) (int_bound 100000)) in
  QCheck.Test.make ~name:"vcodec roundtrips against any base" ~count:300
    (QCheck.pair vec vec)
    (fun (b, v) ->
      let base = vc b and clock = vc v in
      let e = Vcodec.encode ~base clock in
      Vclock.equal (Vcodec.decode ~base e) clock)

let test_vcodec_compresses_small_deltas () =
  let base = vc [ 1000; 2000; 3000; 4000; 5000 ] in
  let next = vc [ 1001; 2000; 3002; 4000; 5001 ] in
  let e = Vcodec.encode ~base next in
  Alcotest.(check bool)
    (Printf.sprintf "5 entries in %d bytes (raw %d)" (Vcodec.size e) (Vcodec.raw_size next))
    true
    (Vcodec.size e <= 5 && Vcodec.size e < Vcodec.raw_size next);
  (* against the zero base the varints still beat 8 bytes/entry *)
  let z = Vcodec.encode ~base:(Vclock.zero 5) next in
  Alcotest.(check bool) "varints beat raw" true (Vcodec.size z < Vcodec.raw_size next)

let test_vcodec_size_mismatch () =
  Alcotest.check_raises "encode mismatch"
    (Invalid_argument "Vcodec.encode: size mismatch") (fun () ->
      ignore (Vcodec.encode ~base:(Vclock.zero 2) (Vclock.zero 3)))

(* ---------- Replication ---------- *)

let test_replication_degree () =
  let r = Replication.create ~nodes:5 ~degree:2 ~total_keys:100 in
  for k = 0 to 99 do
    let reps = Replication.replicas r k in
    Alcotest.(check int) "two replicas" 2 (List.length reps);
    List.iter
      (fun n ->
        Alcotest.(check bool) "valid node" true (n >= 0 && n < 5);
        Alcotest.(check bool) "is_replica agrees" true (Replication.is_replica r n k))
      reps
  done

let test_replication_keys_at_consistent () =
  let r = Replication.create ~nodes:4 ~degree:3 ~total_keys:50 in
  for n = 0 to 3 do
    Array.iter
      (fun k ->
        Alcotest.(check bool) "keys_at matches replicas" true
          (List.mem n (Replication.replicas r k)))
      (Replication.keys_at r n)
  done;
  let total = Array.fold_left (fun acc n -> acc + Array.length (Replication.keys_at r n)) 0
      (Array.init 4 (fun i -> i)) in
  Alcotest.(check int) "every key counted degree times" (50 * 3) total

let test_replication_spread () =
  let r = Replication.create ~nodes:10 ~degree:1 ~total_keys:10_000 in
  let counts = Array.make 10 0 in
  for k = 0 to 9_999 do
    List.iter (fun n -> counts.(n) <- counts.(n) + 1) (Replication.replicas r k)
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "balanced (%d)" c)
        true
        (c > 700 && c < 1300))
    counts

let test_replication_bad_degree () =
  Alcotest.check_raises "degree > nodes"
    (Invalid_argument "Replication.create: degree must be within 1 .. nodes") (fun () ->
      ignore (Replication.create ~nodes:3 ~degree:4 ~total_keys:10))

let () =
  Alcotest.run "data"
    [
      ( "vclock",
        [
          Alcotest.test_case "basics" `Quick test_vclock_basics;
          Alcotest.test_case "order" `Quick test_vclock_order;
          Alcotest.test_case "max" `Quick test_vclock_max;
          Alcotest.test_case "to_array copies" `Quick test_vclock_to_array_copies;
          QCheck_alcotest.to_alcotest vclock_lattice_laws;
        ] );
      ("ids", [ Alcotest.test_case "generator" `Quick test_ids_gen ]);
      ( "mvstore",
        [
          Alcotest.test_case "genesis" `Quick test_mvstore_genesis;
          Alcotest.test_case "install order" `Quick test_mvstore_install_order;
          Alcotest.test_case "select" `Quick test_mvstore_select;
          Alcotest.test_case "truncate" `Quick test_mvstore_truncate;
          Alcotest.test_case "long-chain truncate" `Quick test_mvstore_long_chain_truncate;
          Alcotest.test_case "arena recycling" `Quick test_mvstore_arena_recycling;
          QCheck_alcotest.to_alcotest mvstore_matches_model;
        ] );
      ( "squeue",
        [
          Alcotest.test_case "ordering" `Quick test_squeue_ordering;
          Alcotest.test_case "idempotent insert" `Quick test_squeue_idempotent_insert;
          Alcotest.test_case "remove" `Quick test_squeue_remove;
          QCheck_alcotest.to_alcotest squeue_sorted_property;
        ] );
      ( "commitq",
        [
          Alcotest.test_case "order and head" `Quick test_commitq_order_and_head;
          Alcotest.test_case "duplicate put" `Quick test_commitq_duplicate_put_rejected;
          Alcotest.test_case "update missing" `Quick test_commitq_update_missing_is_noop;
        ] );
      ( "nlog",
        [
          Alcotest.test_case "most recent" `Quick test_nlog_most_recent;
          Alcotest.test_case "visible max unconstrained" `Quick test_nlog_visible_max_unconstrained;
          Alcotest.test_case "visible max bounded" `Quick test_nlog_visible_max_bounded;
          Alcotest.test_case "visible max cutoff" `Quick test_nlog_visible_max_cutoff;
          Alcotest.test_case "prune" `Quick test_nlog_prune;
        ] );
      ( "locks",
        [
          Alcotest.test_case "shared compatible" `Quick test_locks_shared_compatible;
          Alcotest.test_case "exclusive blocks shared" `Quick test_locks_exclusive_blocks_shared;
          Alcotest.test_case "waiter wakes" `Quick test_locks_waiter_wakes;
          Alcotest.test_case "acquire_all rollback" `Quick test_locks_acquire_all_rollback;
          Alcotest.test_case "read/write overlap" `Quick test_locks_acquire_all_read_write_overlap;
        ] );
      ( "vcodec",
        [
          QCheck_alcotest.to_alcotest vcodec_roundtrip;
          Alcotest.test_case "compresses small deltas" `Quick test_vcodec_compresses_small_deltas;
          Alcotest.test_case "size mismatch" `Quick test_vcodec_size_mismatch;
        ] );
      ( "replication",
        [
          Alcotest.test_case "degree" `Quick test_replication_degree;
          Alcotest.test_case "keys_at consistent" `Quick test_replication_keys_at_consistent;
          Alcotest.test_case "spread" `Quick test_replication_spread;
          Alcotest.test_case "bad degree" `Quick test_replication_bad_degree;
        ] );
    ]
