(* Properties for the hot-path optimizations: the sharing/in-place Vclock
   operations against a naive reference, the parked-writer Stampset index
   against a sorted-list oracle, the single-pass Squeue.remove against a
   filter model, and cross-dispatch-mode determinism of the full SSS
   cluster (the network's inline fast path must produce a byte-identical
   execution to the reference fiber-per-message path). *)

open Sss_sim
open Sss_data
open Sss_kv

let vc l = Vclock.of_array (Array.of_list l)

let to_l v = Array.to_list (Vclock.to_array v)

(* ---------- Vclock vs naive reference ---------- *)

let naive_max = List.map2 (fun x y -> if x < y then y else x)

let naive_leq xs ys = List.for_all2 ( <= ) xs ys

let vec = QCheck.(list_of_size (Gen.return 5) (int_bound 50))

let vpair = QCheck.pair vec vec

let vclock_max_matches_reference =
  QCheck.Test.make ~name:"vclock max matches naive reference" ~count:500 vpair
    (fun (xs, ys) ->
      let a = vc xs and b = vc ys in
      let m = Vclock.max a b in
      (* correct result, and the sharing optimization must never mutate its
         arguments *)
      to_l m = naive_max xs ys && to_l a = xs && to_l b = ys)

let vclock_max_into_matches_reference =
  QCheck.Test.make ~name:"vclock max_into matches naive reference" ~count:500 vpair
    (fun (xs, ys) ->
      let d = vc xs and s = vc ys in
      Vclock.max_into d s;
      to_l d = naive_max xs ys && to_l s = ys)

let vclock_orders_match_reference =
  QCheck.Test.make ~name:"vclock leq/equal/compare match reference" ~count:500 vpair
    (fun (xs, ys) ->
      let a = vc xs and b = vc ys in
      Vclock.leq a b = naive_leq xs ys
      && Vclock.equal a b = (xs = ys)
      && compare (Vclock.compare a b) 0 = compare (Stdlib.compare xs ys) 0
      && Vclock.compare a a = 0)

let vclock_set_into_and_copy =
  QCheck.Test.make ~name:"vclock set_into mutates only the copy" ~count:500
    QCheck.(triple vec (int_bound 4) (int_bound 100))
    (fun (xs, i, v) ->
      let a = vc xs in
      let c = Vclock.copy a in
      Vclock.set_into c i v;
      (* the copy took the write, the original did not *)
      Vclock.get c i = v
      && to_l a = xs
      && to_l c = List.mapi (fun j x -> if j = i then v else x) xs)

let test_vclock_unsafe_of_array_shares () =
  let arr = [| 1; 2; 3 |] in
  let v = Vclock.unsafe_of_array arr in
  arr.(1) <- 9;
  Alcotest.(check int) "adopted, not copied" 9 (Vclock.get v 1)

let test_vclock_blit () =
  let src = vc [ 4; 5; 6 ] in
  let dst = vc [ 0; 0; 0 ] in
  Vclock.blit ~src ~dst;
  Alcotest.(check (list int)) "blit copies all entries" [ 4; 5; 6 ] (to_l dst);
  Vclock.set_into dst 0 7;
  Alcotest.(check int) "blit did not alias" 4 (Vclock.get src 0)

(* ---------- Stampset vs sorted-list oracle ---------- *)

let rec remove_one x = function
  | [] -> []
  | y :: rest -> if y = x then rest else y :: remove_one x rest

let probes = [ 0; 1; 7; 15; 29; 30 ]

let stampset_matches_oracle =
  QCheck.Test.make ~name:"stampset matches sorted-list oracle" ~count:300
    QCheck.(list (pair bool (int_bound 30)))
    (fun ops ->
      let s = Stampset.create () in
      let model = ref [] in
      List.for_all
        (fun (is_add, x) ->
          let op_ok =
            if is_add then begin
              Stampset.add s x;
              model := List.sort compare (x :: !model);
              true
            end
            else begin
              let present = List.mem x !model in
              let removed = Stampset.remove s x in
              if present then model := remove_one x !model;
              removed = present
            end
          in
          op_ok
          && Stampset.to_list s = !model
          && Stampset.length s = List.length !model
          && Stampset.is_empty s = (!model = [])
          && Stampset.min_elt s = (match !model with [] -> None | h :: _ -> Some h)
          && List.for_all
               (fun p ->
                 Stampset.mem s p = List.mem p !model
                 && Stampset.first_above s p = List.find_opt (fun y -> y > p) !model
                 && Stampset.exists_leq s p = List.exists (fun y -> y <= p) !model
                 && Stampset.exists_below s p = List.exists (fun y -> y < p) !model)
               probes)
        ops)

(* ---------- Squeue.remove vs filter model ---------- *)

let squeue_remove_matches_model =
  (* arbitrary inserts, then one removal: it must report presence, drop
     exactly the victim's entries, and keep everything else in order *)
  QCheck.Test.make ~name:"squeue remove matches filter model" ~count:300
    QCheck.(
      pair
        (list (quad (int_bound 2) (int_bound 2) (int_bound 3) (int_bound 20)))
        (pair (int_bound 2) (int_bound 3)))
    (fun (inserts, (vn, vl)) ->
      let q = Squeue.create () in
      List.iter
        (fun (kind, node, local, sid) ->
          let txn : Ids.txn = { node; local } in
          match kind with
          | 0 -> Squeue.insert_read q ~txn ~sid
          | 1 -> Squeue.insert_propagated q ~txn ~sid
          | _ -> Squeue.insert_write q ~txn ~sid)
        inserts;
      let victim : Ids.txn = { node = vn; local = vl } in
      let before_r = Squeue.readers q and before_w = Squeue.writers q in
      let was_present = Squeue.mem q victim in
      let removed = Squeue.remove q victim in
      let keep (e : Squeue.entry) = not (Ids.equal_txn e.txn victim) in
      removed = was_present
      && (not (Squeue.mem q victim))
      && Squeue.readers q = List.filter keep before_r
      && Squeue.writers q = List.filter keep before_w)

(* ---------- cross-dispatch-mode determinism ---------- *)

(* The same seeded workload, once per dispatch path.  Everything observable
   must coincide: committed/aborted counts, simulator event count, network
   telemetry, and the full recorded history (timestamps included). *)
let run_mode ~fast_dispatch =
  let sim = Sim.create () in
  let nodes = 3 and keys = 16 in
  let config =
    { Config.default with nodes; replication_degree = 2; total_keys = keys; seed = 23 }
  in
  let cl = Kv.create sim config in
  Sss_net.Network.set_fast_dispatch cl.State.net fast_dispatch;
  let ops =
    {
      Sss_workload.Driver.begin_txn = (fun ~node ~read_only -> Kv.begin_txn cl ~node ~read_only);
      read = Kv.read;
      write = Kv.write;
      commit = Kv.commit;
    }
  in
  let result =
    Sss_workload.Driver.run sim ~nodes ~total_keys:keys
      ~local_keys:(fun n -> Replication.keys_at cl.State.repl n)
      ~profile:(Sss_workload.Driver.paper_profile ~read_only_ratio:0.5)
      ~load:
        {
          Sss_workload.Driver.default_load with
          clients_per_node = 4;
          warmup = 0.01;
          duration = 0.05;
          seed = 23;
        }
      ~ops
  in
  ( result.Sss_workload.Driver.committed,
    result.Sss_workload.Driver.aborted,
    Sss_net.Network.stats cl.State.net,
    Sss_consistency.History.events (Kv.history cl) )

(* Raw [Sim.events_processed] is deliberately NOT compared: the two paths
   may split a node's ingress stream into serve batches at slightly
   different points (a message arriving at the exact instant a batch
   finishes joins it in one mode and starts a fresh batch — one extra
   event — in the other), without moving any handler in virtual time.
   Everything protocol-observable must still coincide exactly. *)
let test_dispatch_modes_identical () =
  let fc, fa, fs, fh = run_mode ~fast_dispatch:true in
  let sc, sa, ss, sh = run_mode ~fast_dispatch:false in
  Alcotest.(check int) "committed" sc fc;
  Alcotest.(check int) "aborted" sa fa;
  Alcotest.(check bool) "network stats" true (fs = ss);
  Alcotest.(check int) "history length" (List.length sh) (List.length fh);
  Alcotest.(check bool) "history byte-identical" true (fh = sh);
  Alcotest.(check bool) "made progress" true (fc > 50)

let () =
  Alcotest.run "hotpath"
    [
      ( "vclock",
        [
          QCheck_alcotest.to_alcotest vclock_max_matches_reference;
          QCheck_alcotest.to_alcotest vclock_max_into_matches_reference;
          QCheck_alcotest.to_alcotest vclock_orders_match_reference;
          QCheck_alcotest.to_alcotest vclock_set_into_and_copy;
          Alcotest.test_case "unsafe_of_array shares" `Quick test_vclock_unsafe_of_array_shares;
          Alcotest.test_case "blit" `Quick test_vclock_blit;
        ] );
      ("stampset", [ QCheck_alcotest.to_alcotest stampset_matches_oracle ]);
      ("squeue", [ QCheck_alcotest.to_alcotest squeue_remove_matches_model ]);
      ( "determinism",
        [ Alcotest.test_case "fast vs slow dispatch identical" `Quick test_dispatch_modes_identical ] );
    ]
