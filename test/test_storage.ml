(* The durable-storage engine in isolation: device timing, group commit,
   fuzzy checkpoints, crash/recover semantics — all on the virtual clock,
   no protocol involved.  See docs/DURABILITY.md for the model. *)

open Sss_sim
module Storage = Sss_storage.Storage

let close_to msg expected actual =
  if Float.abs (expected -. actual) > 1e-12 then
    Alcotest.failf "%s: expected %.9f got %.9f" msg expected actual

(* ---------- the device ---------- *)

let test_iodev_serial_fifo () =
  let sim = Sim.create () in
  let dev = Iodev.create sim ~op_latency:1e-3 ~bandwidth:1e6 in
  let completions = ref [] in
  Sim.spawn sim (fun () ->
      (* two 1000-byte ops submitted back to back: the second queues behind
         the first — completions at 2ms and 4ms, strictly FIFO *)
      Iodev.submit dev ~bytes:1000 (fun () -> completions := ("a", Sim.now sim) :: !completions);
      Iodev.submit dev ~bytes:1000 (fun () -> completions := ("b", Sim.now sim) :: !completions));
  Sim.run sim;
  match List.rev !completions with
  | [ ("a", ta); ("b", tb) ] ->
      close_to "first op" 2e-3 ta;
      close_to "second op queued behind" 4e-3 tb
  | _ -> Alcotest.fail "expected two completions in order"

let test_iodev_service_time () =
  let sim = Sim.create () in
  let dev = Iodev.create sim ~op_latency:5e-5 ~bandwidth:2e9 in
  close_to "latency + transfer" (5e-5 +. (1024. /. 2e9)) (Iodev.service_time dev ~bytes:1024);
  Alcotest.(check int) "no ops yet" 0 (Iodev.ops dev)

(* ---------- group commit ---------- *)

let mk_log ?(op_latency = 1e-3) ?(bandwidth = 1e9) sim =
  let dev = Iodev.create sim ~op_latency ~bandwidth in
  ( Storage.create sim dev
      ~record_bytes:(fun (s : string) -> String.length s)
      ~snapshot:(fun () -> "snap")
      ~snapshot_bytes:String.length (),
    dev )

let test_group_commit_batches () =
  let sim = Sim.create () in
  let w, dev = mk_log sim in
  Sim.spawn sim (fun () ->
      (* the first append opens a flush; the next two arrive while it is in
         flight and must share the second flush *)
      let l0 = Storage.append w "r0" in
      let l1 = Storage.append w "r1" in
      let l2 = Storage.append w "r2" in
      Alcotest.(check (list int)) "lsns are dense" [ 0; 1; 2 ] [ l0; l1; l2 ];
      if not (Storage.await w l2) then Alcotest.fail "no crash, await must succeed";
      let st = Storage.stats w in
      Alcotest.(check int) "two device writes for three records" 2 st.Storage.flushes;
      Alcotest.(check int) "all records durable" 3 st.Storage.flushed_records;
      Alcotest.(check int) "device saw both flushes" 2 (Iodev.ops dev));
  Sim.run sim

let test_await_implies_prefix_durable () =
  let sim = Sim.create () in
  let w, _ = mk_log sim in
  Sim.spawn sim (fun () ->
      ignore (Storage.append w "early" : int);
      let last = Storage.append w "late" in
      if not (Storage.await w last) then Alcotest.fail "await failed without a crash";
      (* serial FIFO device: awaiting the newest record implies every
         earlier one is durable too *)
      Alcotest.(check int) "durable through the last lsn" last (Storage.durable_lsn w));
  Sim.run sim

(* ---------- crash and redo ---------- *)

let test_crash_loses_tail_keeps_prefix () =
  let sim = Sim.create () in
  let w, _ = mk_log sim in
  let replayed = ref None in
  Sim.spawn sim (fun () ->
      let l0 = Storage.append w "keep" in
      if not (Storage.await w l0) then Alcotest.fail "flush failed";
      (* buffered but never flushed: must vanish at the crash *)
      ignore (Storage.append w "lost" : int);
      Storage.crash w;
      Storage.recover w (fun ~recovered ~replay ->
          replayed := Some (recovered, replay)));
  Sim.run sim;
  match !replayed with
  | Some (None, [ "keep" ]) -> ()
  | Some (_, replay) ->
      Alcotest.failf "wrong replay: [%s]" (String.concat "; " replay)
  | None -> Alcotest.fail "recovery callback never ran"

let test_await_wakes_false_on_crash () =
  let sim = Sim.create () in
  let w, _ = mk_log sim in
  let woke = ref None in
  Sim.spawn sim (fun () ->
      let lsn = Storage.append w "doomed" in
      woke := Some (Storage.await w lsn));
  Sim.spawn sim (fun () ->
      (* crash before the 1ms op latency lets the flush complete *)
      Sim.sleep sim 1e-4;
      Storage.crash w);
  Sim.run sim;
  match !woke with
  | Some false -> ()
  | Some true -> Alcotest.fail "await claimed durability across a crash"
  | None -> Alcotest.fail "await never woke"

let test_lsns_monotone_across_crashes () =
  let sim = Sim.create () in
  let w, _ = mk_log sim in
  Sim.spawn sim (fun () ->
      let l0 = Storage.append w "a" in
      if not (Storage.await w l0) then Alcotest.fail "flush failed";
      Storage.crash w;
      Storage.recover w (fun ~recovered:_ ~replay:_ -> ());
      Sim.sleep sim 5e-3;
      let l1 = Storage.append w "b" in
      if not (Storage.await w l1) then Alcotest.fail "second flush failed";
      if l1 <= l0 then Alcotest.failf "lsn went backwards: %d then %d" l0 l1);
  Sim.run sim

(* ---------- checkpoints ---------- *)

let test_checkpoint_truncates_replay () =
  let sim = Sim.create () in
  let dev = Iodev.create sim ~op_latency:1e-4 ~bandwidth:1e9 in
  let state = Buffer.create 16 in
  let w =
    Storage.create sim dev
      ~record_bytes:(fun (s : string) -> String.length s)
        (* copying snapshot of the live state *)
      ~snapshot:(fun () -> Buffer.contents state)
      ~snapshot_bytes:String.length ()
  in
  let result = ref None in
  Sim.spawn sim (fun () ->
      Storage.start_checkpoints w ~interval:1e-3;
      Buffer.add_string state "x";
      let l = Storage.append w "covered" in
      if not (Storage.await w l) then Alcotest.fail "flush failed";
      (* let the demand-armed checkpoint timer fire and its write finish *)
      Sim.sleep sim 5e-3;
      Alcotest.(check int) "one checkpoint taken" 1 (Storage.stats w).Storage.checkpoints;
      Buffer.add_string state "y";
      let l2 = Storage.append w "tail" in
      if not (Storage.await w l2) then Alcotest.fail "tail flush failed";
      Storage.crash w;
      Storage.recover w (fun ~recovered ~replay -> result := Some (recovered, replay)));
  Sim.run sim;
  match !result with
  | Some (Some "x", [ "tail" ]) -> ()
  | Some (snap, replay) ->
      Alcotest.failf "checkpoint %s + replay [%s]"
        (match snap with Some s -> Printf.sprintf "%S" s | None -> "none")
        (String.concat "; " replay)
  | None -> Alcotest.fail "recovery callback never ran"

let test_checkpoint_timer_quiesces () =
  (* an idle log must leave the event queue empty: Sim.run returns and no
     checkpoint fires without new appends *)
  let sim = Sim.create () in
  let w, _ = mk_log ~op_latency:1e-4 sim in
  Sim.spawn sim (fun () ->
      Storage.start_checkpoints w ~interval:1e-3;
      let l = Storage.append w "once" in
      ignore (Storage.await w l : bool));
  Sim.run sim;
  (* run returned: the timer did not re-arm forever *)
  let after = Storage.stats w in
  Alcotest.(check int) "exactly one checkpoint for one burst" 1 after.Storage.checkpoints;
  if Sim.now sim > 1.0 then Alcotest.failf "clock ran away: %f" (Sim.now sim)

let () =
  Alcotest.run "storage"
    [
      ( "iodev",
        [
          Alcotest.test_case "serial fifo" `Quick test_iodev_serial_fifo;
          Alcotest.test_case "service time" `Quick test_iodev_service_time;
        ] );
      ( "wal",
        [
          Alcotest.test_case "group commit batches" `Quick test_group_commit_batches;
          Alcotest.test_case "await implies prefix" `Quick test_await_implies_prefix_durable;
          Alcotest.test_case "crash keeps durable prefix" `Quick
            test_crash_loses_tail_keeps_prefix;
          Alcotest.test_case "await false on crash" `Quick test_await_wakes_false_on_crash;
          Alcotest.test_case "lsns monotone" `Quick test_lsns_monotone_across_crashes;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "truncates replay" `Quick test_checkpoint_truncates_replay;
          Alcotest.test_case "timer quiesces" `Quick test_checkpoint_timer_quiesces;
        ] );
    ]
